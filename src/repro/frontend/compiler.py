"""Compiler from the restricted Python kernel dialect to the MOARD IR.

Supported subset
----------------
* Parameters annotated with IR type spellings (``"double*"``, ``"i64"``,
  ``"double"``, ``"i32*"`` …); return annotation optional (defaults to void).
* Local scalar variables (type inferred from the first assignment).
* ``for v in range(...)`` (1–3 arguments), ``while``, ``if``/``elif``/``else``,
  ``break``, ``continue``, ``return``, ``pass``.
* 1-D subscripts on pointer parameters/locals (reads and writes).
* Arithmetic (``+ - * / // % ** << >> & | ^``), unary ``-``/``not``,
  comparisons, ``and``/``or`` (non-short-circuit), conditional expressions.
* Calls to the math intrinsics in :mod:`repro.frontend.intrinsics` and to
  other kernels already compiled into the same module.
* ``int(x)`` / ``float(x)`` conversions.

Everything is lowered at "-O0" fidelity: every local lives in a stack slot
(``alloca``) with explicit loads and stores, mirroring the un-optimised LLVM
IR the paper's tool consumes, so that assignment/overwrite semantics are
visible to the masking analysis.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.frontend.errors import KernelCompileError
from repro.frontend.intrinsics import INTRINSICS
from repro.ir.builder import IRBuilder
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import (
    FCmpPredicate,
    ICmpPredicate,
    Instruction,
    Opcode,
)
from repro.ir.types import (
    F64,
    I1,
    I64,
    IRType,
    PointerType,
    VOID,
    parse_type,
    pointer_to,
)
from repro.ir.values import Constant, Value
from repro.ir.verify import verify_function


_ICMP_BY_AST = {
    ast.Eq: ICmpPredicate.EQ,
    ast.NotEq: ICmpPredicate.NE,
    ast.Lt: ICmpPredicate.SLT,
    ast.LtE: ICmpPredicate.SLE,
    ast.Gt: ICmpPredicate.SGT,
    ast.GtE: ICmpPredicate.SGE,
}
_FCMP_BY_AST = {
    ast.Eq: FCmpPredicate.OEQ,
    ast.NotEq: FCmpPredicate.ONE,
    ast.Lt: FCmpPredicate.OLT,
    ast.LtE: FCmpPredicate.OLE,
    ast.Gt: FCmpPredicate.OGT,
    ast.GtE: FCmpPredicate.OGE,
}


class _KernelCompiler:
    """Stateful single-function compiler (one instance per kernel)."""

    def __init__(
        self,
        module: Module,
        name: str,
        tree: ast.FunctionDef,
        global_constants: Optional[Dict[str, float]] = None,
    ) -> None:
        self.module = module
        self.name = name
        self.tree = tree
        #: Module-level numeric constants visible to the kernel (e.g. flag masks).
        self.global_constants = global_constants or {}
        self.function: Optional[Function] = None
        self.builder: Optional[IRBuilder] = None
        self.entry_block: Optional[BasicBlock] = None
        #: name -> (alloca instruction, element type)
        self.locals: Dict[str, Tuple[Value, IRType]] = {}
        #: name -> Argument (scalars and pointers)
        self.params: Dict[str, Value] = {}
        #: stack of (break target, continue target)
        self.loop_stack: List[Tuple[BasicBlock, BasicBlock]] = []

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _error(self, message: str, node: Optional[ast.AST] = None) -> KernelCompileError:
        line = getattr(node, "lineno", None) if node is not None else None
        return KernelCompileError(message, kernel=self.name, line=line)

    def _parse_annotation(self, node: Optional[ast.expr], what: str) -> IRType:
        if node is None:
            raise self._error(f"{what} requires a type annotation")
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            spelling = node.value
        elif isinstance(node, ast.Name):
            spelling = node.id
        else:
            raise self._error(f"unsupported annotation for {what}", node)
        try:
            return parse_type(spelling)
        except ValueError as exc:
            raise self._error(str(exc), node) from None

    def _new_local(self, name: str, element_type: IRType) -> Tuple[Value, IRType]:
        """Create a stack slot for a new local variable in the entry block."""
        assert self.entry_block is not None
        alloca = Instruction(
            Opcode.ALLOCA, pointer_to(element_type), [], name=f"{name}.addr"
        )
        self.entry_block.append(alloca)
        slot = (alloca, element_type)
        self.locals[name] = slot
        return slot

    def _coerce(self, value: Value, target: IRType, node: Optional[ast.AST] = None) -> Value:
        """Insert the conversion needed to view ``value`` as type ``target``."""
        b = self.builder
        assert b is not None
        src = value.type
        if src == target:
            return value
        if src.is_integer and target.is_integer:
            if src.bits < target.bits:
                return b.zext(value, target) if src.is_bool else b.sext(value, target)
            return b.trunc(value, target)
        if src.is_integer and target.is_float:
            return b.sitofp(value, target)
        if src.is_float and target.is_integer:
            return b.fptosi(value, target)
        if src.is_float and target.is_float:
            if src.bits < target.bits:
                return b.fpext(value, target)
            return b.fptrunc(value, target)
        raise self._error(f"cannot convert {src} to {target}", node)

    def _as_bool(self, value: Value, node: Optional[ast.AST] = None) -> Value:
        """Coerce an arbitrary scalar to ``i1`` (non-zero test)."""
        b = self.builder
        assert b is not None
        if value.type.is_bool:
            return value
        if value.type.is_integer:
            return b.icmp(ICmpPredicate.NE, value, Constant(value.type, 0), value.type)
        if value.type.is_float:
            return b.fcmp(FCmpPredicate.ONE, value, Constant(value.type, 0.0), value.type)
        raise self._error("cannot use a pointer as a boolean", node)

    def _common_type(self, lhs: Value, rhs: Value) -> IRType:
        if lhs.type.is_float or rhs.type.is_float:
            return F64
        return I64

    # ------------------------------------------------------------------ #
    # top level
    # ------------------------------------------------------------------ #
    def compile(self) -> Function:
        tree = self.tree
        arg_types: List[IRType] = []
        arg_names: List[str] = []
        if tree.args.posonlyargs or tree.args.kwonlyargs or tree.args.vararg or tree.args.kwarg:
            raise self._error("only plain positional parameters are supported")
        for arg in tree.args.args:
            arg_types.append(self._parse_annotation(arg.annotation, f"parameter {arg.arg!r}"))
            arg_names.append(arg.arg)
        if tree.returns is not None:
            if isinstance(tree.returns, ast.Constant) and tree.returns.value is None:
                return_type = VOID
            else:
                spelling = (
                    tree.returns.value
                    if isinstance(tree.returns, ast.Constant)
                    else getattr(tree.returns, "id", None)
                )
                return_type = VOID if spelling in ("void", None) else self._parse_annotation(
                    tree.returns, "return type"
                )
        else:
            return_type = VOID

        func = Function(self.name, arg_types, arg_names, return_type)
        self.function = func
        self.entry_block = func.add_block("entry")
        body_block = func.add_block("body")
        self.builder = IRBuilder(func)
        self.builder.set_block(body_block)
        for arg in func.args:
            self.params[arg.name] = arg

        statements = tree.body
        # skip a leading docstring
        if (
            statements
            and isinstance(statements[0], ast.Expr)
            and isinstance(statements[0].value, ast.Constant)
            and isinstance(statements[0].value.value, str)
        ):
            statements = statements[1:]
        self._compile_body(statements)

        # close the function
        if not self.builder.block.is_terminated:
            if return_type.is_void:
                self.builder.ret()
            else:
                # The fall-through block is a genuine error only when it can
                # actually execute; joins whose branches all returned (e.g. an
                # exhaustive if/elif/else) are unreachable and merely need a
                # dead terminator.
                open_block = self.builder.block
                open_block.append(Instruction(Opcode.RET, VOID, [Constant(return_type, 0)]))
                if id(open_block) in self._reachable_blocks(body_block):
                    raise self._error(
                        "non-void kernel falls off the end without a return"
                    )
        # entry block only holds allocas; jump to the body
        entry_builder = IRBuilder(func)
        entry_builder.set_block(self.entry_block)
        entry_builder.br(body_block)
        # close any remaining unreachable blocks (dead-code continuations)
        # with a dead return so the verifier never sees an open block.
        for block in self.function.blocks:
            if not block.is_terminated:
                closer = IRBuilder(func)
                closer.set_block(block)
                if return_type.is_void:
                    closer.ret()
                else:
                    closer.ret(Constant(return_type, 0))
        func.metadata["source"] = ast.unparse(tree)
        verify_function(func, self.module)
        return func

    def _reachable_blocks(self, start: BasicBlock) -> set:
        """Blocks reachable from ``start`` following branch targets."""
        seen = set()
        worklist = [start]
        while worklist:
            block = worklist.pop()
            if id(block) in seen:
                continue
            seen.add(id(block))
            terminator = block.terminator
            if terminator is not None:
                worklist.extend(terminator.targets)
        return seen

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #
    def _compile_body(self, statements: Sequence[ast.stmt]) -> None:
        for stmt in statements:
            if self.builder.block.is_terminated:
                # unreachable code after return/break/continue: keep compiling
                # into a fresh block so the verifier stays happy.
                dead = self.function.add_block("dead")
                self.builder.set_block(dead)
            self._compile_statement(stmt)

    def _compile_statement(self, stmt: ast.stmt) -> None:
        self.builder.current_line = getattr(stmt, "lineno", None)
        if isinstance(stmt, ast.Assign):
            self._compile_assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._compile_aug_assign(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            self._compile_ann_assign(stmt)
        elif isinstance(stmt, ast.For):
            self._compile_for(stmt)
        elif isinstance(stmt, ast.While):
            self._compile_while(stmt)
        elif isinstance(stmt, ast.If):
            self._compile_if(stmt)
        elif isinstance(stmt, ast.Return):
            self._compile_return(stmt)
        elif isinstance(stmt, ast.Break):
            self._compile_break(stmt)
        elif isinstance(stmt, ast.Continue):
            self._compile_continue(stmt)
        elif isinstance(stmt, ast.Expr):
            self._compile_expression(stmt.value)
        elif isinstance(stmt, ast.Pass):
            pass
        else:
            raise self._error(
                f"unsupported statement: {type(stmt).__name__}", stmt
            )

    def _compile_assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            raise self._error("chained assignment is not supported", stmt)
        target = stmt.targets[0]
        value = self._compile_expression(stmt.value)
        self._store_to_target(target, value)

    def _compile_ann_assign(self, stmt: ast.AnnAssign) -> None:
        if not isinstance(stmt.target, ast.Name):
            raise self._error("annotated assignment target must be a name", stmt)
        element_type = self._parse_annotation(stmt.annotation, f"local {stmt.target.id!r}")
        if stmt.target.id not in self.locals:
            self._new_local(stmt.target.id, element_type)
        if stmt.value is not None:
            value = self._compile_expression(stmt.value)
            self._store_to_target(stmt.target, value)

    def _compile_aug_assign(self, stmt: ast.AugAssign) -> None:
        current = self._load_from_target(stmt.target)
        rhs = self._compile_expression(stmt.value)
        combined = self._binary_op(stmt.op, current, rhs, stmt)
        self._store_to_target(stmt.target, combined)

    def _store_to_target(self, target: ast.expr, value: Value) -> None:
        b = self.builder
        if isinstance(target, ast.Name):
            name = target.id
            if name in self.params:
                raise self._error(
                    f"cannot reassign parameter {name!r}; copy it to a local first",
                    target,
                )
            if name in self.locals:
                slot, element_type = self.locals[name]
            else:
                element_type = value.type if not value.type.is_bool else I64
                slot, element_type = self._new_local(name, element_type)
            b.store(self._coerce(value, element_type, target), slot)
        elif isinstance(target, ast.Subscript):
            pointer = self._subscript_address(target)
            b.store(self._coerce(value, pointer.type.pointee, target), pointer)
        else:
            raise self._error(
                f"unsupported assignment target: {type(target).__name__}", target
            )

    def _load_from_target(self, target: ast.expr) -> Value:
        if isinstance(target, ast.Name):
            return self._compile_name(target)
        if isinstance(target, ast.Subscript):
            return self.builder.load(self._subscript_address(target))
        raise self._error(
            f"unsupported augmented-assignment target: {type(target).__name__}", target
        )

    def _compile_return(self, stmt: ast.Return) -> None:
        b = self.builder
        if stmt.value is None:
            if not self.function.return_type.is_void:
                raise self._error("return without a value in a non-void kernel", stmt)
            b.ret()
            return
        value = self._compile_expression(stmt.value)
        if self.function.return_type.is_void:
            raise self._error("return with a value in a void kernel", stmt)
        b.ret(self._coerce(value, self.function.return_type, stmt))

    def _compile_break(self, stmt: ast.Break) -> None:
        if not self.loop_stack:
            raise self._error("break outside a loop", stmt)
        self.builder.br(self.loop_stack[-1][0])

    def _compile_continue(self, stmt: ast.Continue) -> None:
        if not self.loop_stack:
            raise self._error("continue outside a loop", stmt)
        self.builder.br(self.loop_stack[-1][1])

    # ------------------------------------------------------------------ #
    # control flow
    # ------------------------------------------------------------------ #
    def _compile_for(self, stmt: ast.For) -> None:
        if stmt.orelse:
            raise self._error("for/else is not supported", stmt)
        if not isinstance(stmt.target, ast.Name):
            raise self._error("for target must be a simple name", stmt)
        if not (
            isinstance(stmt.iter, ast.Call)
            and isinstance(stmt.iter.func, ast.Name)
            and stmt.iter.func.id == "range"
        ):
            raise self._error("for loops must iterate over range(...)", stmt)
        range_args = stmt.iter.args
        if not 1 <= len(range_args) <= 3:
            raise self._error("range() takes 1 to 3 arguments", stmt)

        b = self.builder
        func = self.function
        if len(range_args) == 1:
            start: Value = Constant(I64, 0)
            stop = self._coerce(self._compile_expression(range_args[0]), I64, stmt)
            step: Value = Constant(I64, 1)
        else:
            start = self._coerce(self._compile_expression(range_args[0]), I64, stmt)
            stop = self._coerce(self._compile_expression(range_args[1]), I64, stmt)
            step = (
                self._coerce(self._compile_expression(range_args[2]), I64, stmt)
                if len(range_args) == 3
                else Constant(I64, 1)
            )

        name = stmt.target.id
        if name in self.locals:
            slot, element_type = self.locals[name]
            if not element_type.is_integer:
                raise self._error(f"loop variable {name!r} is not an integer", stmt)
        else:
            slot, element_type = self._new_local(name, I64)
        b.store(self._coerce(start, element_type, stmt), slot)

        cond_block = func.add_block("for.cond")
        body_block = func.add_block("for.body")
        inc_block = func.add_block("for.inc")
        end_block = func.add_block("for.end")

        b.br(cond_block)
        b.set_block(cond_block)
        induction = b.load(slot)
        # negative constant steps compare with > stop, everything else with <
        descending = isinstance(step, Constant) and step.value < 0
        predicate = ICmpPredicate.SGT if descending else ICmpPredicate.SLT
        cond = b.icmp(predicate, induction, stop, I64)
        b.cond_br(cond, body_block, end_block)

        b.set_block(body_block)
        self.loop_stack.append((end_block, inc_block))
        self._compile_body(stmt.body)
        self.loop_stack.pop()
        if not b.block.is_terminated:
            b.br(inc_block)

        b.set_block(inc_block)
        current = b.load(slot)
        b.store(b.add(current, step, I64), slot)
        b.br(cond_block)

        b.set_block(end_block)

    def _compile_while(self, stmt: ast.While) -> None:
        if stmt.orelse:
            raise self._error("while/else is not supported", stmt)
        b = self.builder
        func = self.function
        cond_block = func.add_block("while.cond")
        body_block = func.add_block("while.body")
        end_block = func.add_block("while.end")

        b.br(cond_block)
        b.set_block(cond_block)
        cond = self._as_bool(self._compile_expression(stmt.test), stmt)
        b.cond_br(cond, body_block, end_block)

        b.set_block(body_block)
        self.loop_stack.append((end_block, cond_block))
        self._compile_body(stmt.body)
        self.loop_stack.pop()
        if not b.block.is_terminated:
            b.br(cond_block)

        b.set_block(end_block)

    def _compile_if(self, stmt: ast.If) -> None:
        b = self.builder
        func = self.function
        cond = self._as_bool(self._compile_expression(stmt.test), stmt)
        then_block = func.add_block("if.then")
        else_block = func.add_block("if.else") if stmt.orelse else None
        merge_block = func.add_block("if.end")

        b.cond_br(cond, then_block, else_block if else_block is not None else merge_block)

        b.set_block(then_block)
        self._compile_body(stmt.body)
        if not b.block.is_terminated:
            b.br(merge_block)

        if else_block is not None:
            b.set_block(else_block)
            self._compile_body(stmt.orelse)
            if not b.block.is_terminated:
                b.br(merge_block)

        b.set_block(merge_block)

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #
    def _compile_expression(self, node: ast.expr) -> Value:
        if isinstance(node, ast.Constant):
            return self._compile_constant(node)
        if isinstance(node, ast.Name):
            return self._compile_name(node)
        if isinstance(node, ast.Subscript):
            return self.builder.load(self._subscript_address(node))
        if isinstance(node, ast.BinOp):
            lhs = self._compile_expression(node.left)
            rhs = self._compile_expression(node.right)
            return self._binary_op(node.op, lhs, rhs, node)
        if isinstance(node, ast.UnaryOp):
            return self._compile_unary(node)
        if isinstance(node, ast.Compare):
            return self._compile_compare(node)
        if isinstance(node, ast.BoolOp):
            return self._compile_boolop(node)
        if isinstance(node, ast.Call):
            return self._compile_call(node)
        if isinstance(node, ast.IfExp):
            cond = self._as_bool(self._compile_expression(node.test), node)
            then_value = self._compile_expression(node.body)
            else_value = self._compile_expression(node.orelse)
            common = self._common_type(then_value, else_value)
            return self.builder.select(
                cond,
                self._coerce(then_value, common, node),
                self._coerce(else_value, common, node),
            )
        raise self._error(f"unsupported expression: {type(node).__name__}", node)

    def _compile_constant(self, node: ast.Constant) -> Value:
        value = node.value
        if isinstance(value, bool):
            return Constant(I1, 1 if value else 0)
        if isinstance(value, int):
            return Constant(I64, value)
        if isinstance(value, float):
            return Constant(F64, value)
        raise self._error(f"unsupported constant {value!r}", node)

    def _compile_name(self, node: ast.Name) -> Value:
        name = node.id
        if name in self.params:
            return self.params[name]
        if name in self.locals:
            slot, _ = self.locals[name]
            return self.builder.load(slot)
        if name in self.global_constants:
            value = self.global_constants[name]
            if isinstance(value, bool):
                return Constant(I1, 1 if value else 0)
            if isinstance(value, int):
                return Constant(I64, value)
            return Constant(F64, float(value))
        raise self._error(f"use of undefined variable {name!r}", node)

    def _subscript_address(self, node: ast.Subscript) -> Value:
        base = node.value
        if not isinstance(base, ast.Name):
            raise self._error("only direct array names can be subscripted", node)
        pointer = self._compile_name(base)
        if not isinstance(pointer.type, PointerType):
            raise self._error(f"{base.id!r} is not a pointer and cannot be indexed", node)
        index = self._coerce(self._compile_expression(node.slice), I64, node)
        return self.builder.gep(pointer, index, name=f"{base.id}.elt")

    def _binary_op(self, op: ast.operator, lhs: Value, rhs: Value, node: ast.AST) -> Value:
        b = self.builder
        # pointer arithmetic: ptr +/- int keeps the pointer type via gep
        if isinstance(lhs.type, PointerType) and isinstance(op, (ast.Add, ast.Sub)):
            offset = self._coerce(rhs, I64, node)
            if isinstance(op, ast.Sub):
                offset = b.sub(Constant(I64, 0), offset, I64)
            return b.gep(lhs, offset)

        common = self._common_type(lhs, rhs)
        if isinstance(op, (ast.LShift, ast.RShift, ast.BitAnd, ast.BitOr, ast.BitXor)):
            common = I64
        lhs = self._coerce(lhs, common, node)
        rhs = self._coerce(rhs, common, node)
        is_float = common.is_float

        if isinstance(op, ast.Add):
            return b.fadd(lhs, rhs, common) if is_float else b.add(lhs, rhs, common)
        if isinstance(op, ast.Sub):
            return b.fsub(lhs, rhs, common) if is_float else b.sub(lhs, rhs, common)
        if isinstance(op, ast.Mult):
            return b.fmul(lhs, rhs, common) if is_float else b.mul(lhs, rhs, common)
        if isinstance(op, ast.Div):
            if is_float:
                return b.fdiv(lhs, rhs, common)
            # true division of integers produces a double, as in C casts
            return b.fdiv(self._coerce(lhs, F64, node), self._coerce(rhs, F64, node), F64)
        if isinstance(op, ast.FloorDiv):
            if is_float:
                quotient = b.fdiv(lhs, rhs, common)
                return b.call("floor", [quotient], F64)
            return b.sdiv(lhs, rhs, common)
        if isinstance(op, ast.Mod):
            return b.frem(lhs, rhs, common) if is_float else b.srem(lhs, rhs, common)
        if isinstance(op, ast.Pow):
            return b.call(
                "pow",
                [self._coerce(lhs, F64, node), self._coerce(rhs, F64, node)],
                F64,
            )
        if isinstance(op, ast.LShift):
            return b.shl(lhs, rhs, common)
        if isinstance(op, ast.RShift):
            return b.ashr(lhs, rhs, common)
        if isinstance(op, ast.BitAnd):
            return b.and_(lhs, rhs, common)
        if isinstance(op, ast.BitOr):
            return b.or_(lhs, rhs, common)
        if isinstance(op, ast.BitXor):
            return b.xor(lhs, rhs, common)
        raise self._error(f"unsupported binary operator {type(op).__name__}", node)

    def _compile_unary(self, node: ast.UnaryOp) -> Value:
        b = self.builder
        # fold negated literals so loop steps like ``-1`` stay constants
        if isinstance(node.op, ast.USub) and isinstance(node.operand, ast.Constant):
            literal = self._compile_constant(node.operand)
            if isinstance(literal, Constant):
                return Constant(literal.type, -literal.value)
        operand = self._compile_expression(node.operand)
        if isinstance(node.op, ast.USub):
            if operand.type.is_float:
                return b.fneg(operand, operand.type)
            return b.sub(Constant(operand.type, 0), operand, operand.type)
        if isinstance(node.op, ast.UAdd):
            return operand
        if isinstance(node.op, ast.Not):
            return b.xor(
                self._coerce(self._as_bool(operand, node), I64, node),
                Constant(I64, 1),
                I64,
            )
        if isinstance(node.op, ast.Invert):
            return b.xor(
                self._coerce(operand, I64, node), Constant(I64, -1), I64
            )
        raise self._error(f"unsupported unary operator {type(node.op).__name__}", node)

    def _compile_compare(self, node: ast.Compare) -> Value:
        if len(node.ops) != 1 or len(node.comparators) != 1:
            raise self._error("chained comparisons are not supported", node)
        b = self.builder
        lhs = self._compile_expression(node.left)
        rhs = self._compile_expression(node.comparators[0])
        common = self._common_type(lhs, rhs)
        lhs = self._coerce(lhs, common, node)
        rhs = self._coerce(rhs, common, node)
        op_type = type(node.ops[0])
        if common.is_float:
            predicate = _FCMP_BY_AST.get(op_type)
            if predicate is None:
                raise self._error(f"unsupported comparison {op_type.__name__}", node)
            return b.fcmp(predicate, lhs, rhs, common)
        predicate = _ICMP_BY_AST.get(op_type)
        if predicate is None:
            raise self._error(f"unsupported comparison {op_type.__name__}", node)
        return b.icmp(predicate, lhs, rhs, common)

    def _compile_boolop(self, node: ast.BoolOp) -> Value:
        b = self.builder
        values = [
            self._coerce(self._as_bool(self._compile_expression(v), node), I64, node)
            for v in node.values
        ]
        result = values[0]
        for value in values[1:]:
            if isinstance(node.op, ast.And):
                result = b.and_(result, value, I64)
            else:
                result = b.or_(result, value, I64)
        return b.icmp(ICmpPredicate.NE, result, Constant(I64, 0), I64)

    def _compile_call(self, node: ast.Call) -> Value:
        if not isinstance(node.func, ast.Name):
            raise self._error("only direct calls by name are supported", node)
        if node.keywords:
            raise self._error("keyword arguments are not supported", node)
        name = node.func.id
        b = self.builder
        args = [self._compile_expression(arg) for arg in node.args]

        # type conversions spelled as calls
        if name == "int":
            if len(args) != 1:
                raise self._error("int() takes exactly one argument", node)
            return self._coerce(args[0], I64, node)
        if name == "float":
            if len(args) != 1:
                raise self._error("float() takes exactly one argument", node)
            return self._coerce(args[0], F64, node)

        if name in INTRINSICS:
            info = INTRINSICS[name]
            if len(args) != info.arity:
                raise self._error(
                    f"{name}() takes {info.arity} argument(s), got {len(args)}", node
                )
            if info.result_follows_argument:
                common = args[0].type
                if info.arity == 2:
                    common = self._common_type(args[0], args[1])
                    args = [self._coerce(a, common, node) for a in args]
                return b.call(name, args, common)
            args = [self._coerce(a, F64, node) for a in args]
            return b.call(name, args, info.result_type)

        if name in self.module:
            callee = self.module.get_function(name)
            if len(args) != len(callee.args):
                raise self._error(
                    f"{name}() takes {len(callee.args)} argument(s), got {len(args)}",
                    node,
                )
            coerced = [
                arg if isinstance(arg.type, PointerType) else self._coerce(arg, p.type, node)
                for arg, p in zip(args, callee.args)
            ]
            return b.call(name, coerced, callee.return_type)

        raise self._error(f"call to unknown function {name!r}", node)


# ---------------------------------------------------------------------- #
# public entry points
# ---------------------------------------------------------------------- #
def _function_ast(source_function: Callable) -> ast.FunctionDef:
    source = textwrap.dedent(inspect.getsource(source_function))
    tree = ast.parse(source)
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            return node
    raise KernelCompileError(
        f"could not find a function definition in source of {source_function!r}"
    )


def compile_kernel(
    source_function: Callable,
    module: Optional[Module] = None,
    name: Optional[str] = None,
) -> Function:
    """Compile one kernel function into ``module`` (created if omitted).

    Returns the resulting :class:`~repro.ir.function.Function`; the module is
    reachable through ``function.metadata["module"]``.
    """
    module = module if module is not None else Module(source_function.__name__)
    tree = _function_ast(source_function)
    kernel_name = name or tree.name
    # Module-level int/float constants of the defining module (flag masks,
    # fixed sizes, …) are visible inside the kernel as literals.
    global_constants = {
        key: value
        for key, value in getattr(source_function, "__globals__", {}).items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
        and not key.startswith("__")
    }
    function = _KernelCompiler(module, kernel_name, tree, global_constants).compile()
    module.add_function(function)
    function.metadata["module"] = module
    return function


def compile_kernel_source(
    source: str,
    module: Optional[Module] = None,
    name: Optional[str] = None,
) -> Function:
    """Compile a kernel given as *source text* (created if ``module`` omitted).

    This is the entry point for synthesised kernels — code that is generated
    rather than written as a Python function in a module (e.g. the
    duplicate-and-compare wrappers of :mod:`repro.protection.apply`), where
    ``inspect.getsource`` has nothing to find.  The source must contain
    exactly one function definition in the restricted kernel dialect; it may
    call kernels already compiled into ``module``.
    """
    tree = ast.parse(textwrap.dedent(source))
    functions = [node for node in tree.body if isinstance(node, ast.FunctionDef)]
    if len(functions) != 1:
        raise KernelCompileError(
            f"kernel source must define exactly one function, found {len(functions)}"
        )
    module = module if module is not None else Module(functions[0].name)
    kernel_name = name or functions[0].name
    function = _KernelCompiler(module, kernel_name, functions[0], {}).compile()
    module.add_function(function)
    function.metadata["module"] = module
    return function


def compile_kernels(
    source_functions: Sequence[Callable], module_name: str = "kernels"
) -> Module:
    """Compile several kernels into one module (callees first).

    Functions later in the sequence may call earlier ones by name.
    """
    module = Module(module_name)
    for source_function in source_functions:
        compile_kernel(source_function, module)
    return module
