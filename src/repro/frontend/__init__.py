"""Kernel frontend: compiles a restricted Python subset to the MOARD IR.

The original MOARD instruments C/Fortran benchmarks with an LLVM pass.  This
reproduction instead lets workloads be written as ordinary Python functions
in a restricted "kernel" dialect (typed parameters, ``for``/``while``/``if``,
flat 1-D pointer indexing, scalar arithmetic, math intrinsics) which are then
compiled — via the CPython ``ast`` module — into the IR defined in
:mod:`repro.ir`.  Executing the compiled IR on the tracing VM produces the
dynamic instruction traces the aDVF analysis consumes.

Public API
----------
:func:`compile_kernel`, :func:`compile_kernels`,
:func:`compile_kernel_source`, :class:`KernelCompileError`.
"""

from repro.frontend.errors import KernelCompileError
from repro.frontend.intrinsics import INTRINSICS, IntrinsicInfo
from repro.frontend.compiler import (
    compile_kernel,
    compile_kernel_source,
    compile_kernels,
)

__all__ = [
    "KernelCompileError",
    "INTRINSICS",
    "IntrinsicInfo",
    "compile_kernel",
    "compile_kernel_source",
    "compile_kernels",
]
