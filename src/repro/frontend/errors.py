"""Diagnostics for the kernel frontend."""

from __future__ import annotations

from typing import Optional


class KernelCompileError(Exception):
    """Raised when a kernel uses a construct outside the supported subset.

    The message always contains the kernel name and, when available, the
    source line within the kernel body, so workload authors can find the
    offending statement quickly.
    """

    def __init__(
        self,
        message: str,
        kernel: Optional[str] = None,
        line: Optional[int] = None,
    ) -> None:
        location = ""
        if kernel is not None:
            location = f" [kernel {kernel}"
            if line is not None:
                location += f", line {line}"
            location += "]"
        super().__init__(message + location)
        self.kernel = kernel
        self.line = line
