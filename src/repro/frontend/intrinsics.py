"""Intrinsic functions available inside kernels.

Kernels may call a small math vocabulary (``sqrt``, ``fabs`` …).  The
compiler lowers such calls to IR ``call`` instructions; the VM evaluates
them natively.  The table below records, per intrinsic, the number of
arguments and whether the result follows the argument type or is forced to
``double``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

from repro.ir.types import F64, IRType


@dataclass(frozen=True)
class IntrinsicInfo:
    """Description of one intrinsic callable from kernel code."""

    name: str
    arity: int
    result_type: IRType
    #: Reference evaluation used by the VM.
    evaluate: Callable[..., float]
    #: If True the result type follows the first argument's type instead of
    #: :attr:`result_type` (used by min/max/abs so they work on integers).
    result_follows_argument: bool = False


def _safe_sqrt(x: float) -> float:
    """sqrt that saturates negative inputs to 0.0.

    Fault injection routinely produces slightly negative values where the
    original program guarantees non-negative operands; saturating keeps the
    faulty execution alive so the acceptance check (not an exception) decides
    the outcome, matching how the paper's native benchmarks behave (the FPU
    returns NaN rather than aborting).
    """
    return math.sqrt(x) if x >= 0.0 else float("nan")


def _safe_log(x: float) -> float:
    return math.log(x) if x > 0.0 else float("-inf")


def _safe_exp(x: float) -> float:
    # Avoid OverflowError on corrupted exponents; IEEE semantics saturate.
    try:
        return math.exp(x)
    except OverflowError:
        return float("inf")


def _safe_pow(x: float, y: float) -> float:
    try:
        return math.pow(x, y)
    except (OverflowError, ValueError):
        return float("nan")


INTRINSICS: Dict[str, IntrinsicInfo] = {
    "sqrt": IntrinsicInfo("sqrt", 1, F64, _safe_sqrt),
    "fabs": IntrinsicInfo("fabs", 1, F64, abs),
    "exp": IntrinsicInfo("exp", 1, F64, _safe_exp),
    "log": IntrinsicInfo("log", 1, F64, _safe_log),
    "sin": IntrinsicInfo("sin", 1, F64, math.sin),
    "cos": IntrinsicInfo("cos", 1, F64, math.cos),
    "floor": IntrinsicInfo("floor", 1, F64, math.floor),
    "ceil": IntrinsicInfo("ceil", 1, F64, math.ceil),
    "pow": IntrinsicInfo("pow", 2, F64, _safe_pow),
    "fmin": IntrinsicInfo("fmin", 2, F64, min),
    "fmax": IntrinsicInfo("fmax", 2, F64, max),
    "abs": IntrinsicInfo("abs", 1, F64, abs, result_follows_argument=True),
    "min": IntrinsicInfo("min", 2, F64, min, result_follows_argument=True),
    "max": IntrinsicInfo("max", 2, F64, max, result_follows_argument=True),
}
