"""Fault specifications consumed by the interpreter.

A :class:`FaultSpec` names one bit of one operand occurrence of one dynamic
instruction — exactly the "fault injection site" vocabulary of the paper's
deterministic fault injector (§IV): *dynamic instruction ID, operand ID, bit
location*.  The additional :class:`FaultTarget` values let the exhaustive
validator also strike an instruction's result or the old memory contents a
store is about to overwrite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class FaultTarget(enum.Enum):
    """Where, relative to the chosen dynamic instruction, the bit is flipped."""

    #: Flip a bit in one input operand *before* the instruction executes.
    OPERAND = "operand"
    #: Flip a bit in the instruction's result *after* it executes.
    RESULT = "result"
    #: Flip a bit in the memory word a ``store`` is about to overwrite
    #: (models an error sitting in the data object that the store masks).
    STORE_DEST_OLD = "store_dest_old"


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic single-bit fault.

    Attributes
    ----------
    dynamic_id:
        Index of the dynamic instruction (0-based position in the trace).
    bit:
        Bit position to flip, 0 = least-significant bit.
    target:
        Which value of the instruction is struck.
    operand_index:
        Operand position for :attr:`FaultTarget.OPERAND` faults.
    note:
        Free-form provenance string (which analysis generated the site).
    """

    dynamic_id: int
    bit: int
    target: FaultTarget = FaultTarget.OPERAND
    operand_index: int = 0
    note: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.dynamic_id < 0:
            raise ValueError("dynamic_id must be non-negative")
        if self.bit < 0:
            raise ValueError("bit must be non-negative")
        if self.target is FaultTarget.OPERAND and self.operand_index < 0:
            raise ValueError("operand_index must be non-negative")

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form used by the campaign store and JSONL exports."""
        return {
            "dynamic_id": self.dynamic_id,
            "bit": self.bit,
            "target": self.target.value,
            "operand_index": self.operand_index,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            dynamic_id=int(payload["dynamic_id"]),
            bit=int(payload["bit"]),
            target=FaultTarget(payload.get("target", FaultTarget.OPERAND.value)),
            operand_index=int(payload.get("operand_index", 0)),
            note=str(payload.get("note", "")),
        )

    def describe(self) -> str:
        """Human-readable one-liner used in logs and reports."""
        where = {
            FaultTarget.OPERAND: f"operand {self.operand_index}",
            FaultTarget.RESULT: "result",
            FaultTarget.STORE_DEST_OLD: "store destination (old value)",
        }[self.target]
        return f"flip bit {self.bit} of {where} at dynamic instruction {self.dynamic_id}"


@dataclass(frozen=True)
class FaultOutcomeRecord:
    """Raw record of what a faulty execution did (filled by the injectors)."""

    spec: FaultSpec
    crashed: bool
    crash_reason: Optional[str]
    numerically_identical: bool
    acceptable: bool
