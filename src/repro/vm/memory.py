"""Flat, byte-addressable memory with named data objects.

MOARD's whole point is associating corrupted values with *data objects*;
the memory model is therefore organised around named allocations
(:class:`DataObject`) whose address ranges are known, so that every dynamic
load/store can be resolved back to ``(object name, element index)`` when the
trace is recorded.

Addresses are plain integers in a single 64-bit address space.  Allocations
are separated by guard gaps so that an index corrupted by a bit flip lands
either inside another object (wrong data) or in a gap / unmapped space
(:class:`~repro.vm.errors.SegmentationFault`) — the same two failure modes a
native execution exhibits.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ir.types import F32, F64, I1, I8, I16, I32, I64, IRType
from repro.vm.bits import bits_to_value, to_signed, to_unsigned, value_to_bits
from repro.vm.errors import SegmentationFault, VMError

Number = Union[int, float]

_DTYPE_BY_TYPE = {
    I1: np.int8,
    I8: np.int8,
    I16: np.int16,
    I32: np.int32,
    I64: np.int64,
    F32: np.float32,
    F64: np.float64,
}


def dtype_for(element_type: IRType) -> np.dtype:
    """NumPy dtype used to back a data object of ``element_type`` elements."""
    try:
        return np.dtype(_DTYPE_BY_TYPE[element_type])
    except KeyError:
        raise VMError(f"no storage dtype for element type {element_type}") from None


@dataclass
class DataObject:
    """A named, contiguous allocation.

    Attributes
    ----------
    name:
        Application-level name (``"colidx"``, ``"sum"``, …).  This is the key
        the aDVF analysis is parameterised by.
    element_type:
        IR type of each element.
    count:
        Number of elements.
    base:
        First byte address.
    is_stack:
        True for compiler-generated local slots (kernel locals); these are
        *not* target data objects but still participate in propagation.
    """

    name: str
    element_type: IRType
    count: int
    base: int
    is_stack: bool = False
    array: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]

    #: Copy-on-write marker (class attribute, not a dataclass field): when a
    #: :meth:`Memory.fork` shares this object's backing array with another
    #: address space, both sides are flagged and the first typed write
    #: (:meth:`set` / :meth:`fill_from`) makes a private copy.  Direct
    #: ``.array`` mutation bypasses the barrier — forked memories must only
    #: be written through the typed accessors (the VM always is).
    _cow_shared = False

    @property
    def element_size(self) -> int:
        return self.element_type.size_bytes

    @property
    def size_bytes(self) -> int:
        return self.count * self.element_size

    @property
    def end(self) -> int:
        """One past the last byte address."""
        return self.base + self.size_bytes

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def address_of(self, index: int) -> int:
        """Byte address of element ``index``."""
        if not 0 <= index < self.count:
            raise IndexError(f"{self.name}[{index}] out of range (count={self.count})")
        return self.base + index * self.element_size

    def index_of(self, address: int) -> int:
        """Element index containing byte ``address`` (must be aligned)."""
        offset = address - self.base
        if offset % self.element_size:
            raise SegmentationFault(address, f"misaligned access into {self.name}")
        return offset // self.element_size

    # ------------------------------------------------------------------ #
    # typed element access (used by Memory and by workload setup code)
    # ------------------------------------------------------------------ #
    def get(self, index: int) -> Number:
        value = self.array[index]
        if self.element_type.is_float:
            return float(value)
        return int(value)

    def set(self, index: int, value: Number) -> None:
        if self._cow_shared:
            self.array = self.array.copy()
            self._cow_shared = False
        if self.element_type.is_float:
            self.array[index] = float(value)
        else:
            self.array[index] = to_signed(int(value), max(8, self.element_type.bits))

    def cast_value(self, value: Number) -> Number:
        """The exact Python value :meth:`get` would return after
        ``set(index, value)`` — i.e. ``value`` pushed through the backing
        array's dtype (f32 rounding, integer wrapping) and back.

        The lockstep batch replay uses this to predict a store's stored
        bits without touching memory.
        """
        if self.element_type.is_float:
            return float(self.array.dtype.type(float(value)))
        return int(
            self.array.dtype.type(
                to_signed(int(value), max(8, self.element_type.bits))
            )
        )

    def values(self) -> np.ndarray:
        """A copy of the current contents as a NumPy array."""
        return self.array.copy()

    def fill_from(self, values: Sequence[Number]) -> None:
        data = np.asarray(values)
        if data.shape != (self.count,):
            raise ValueError(
                f"cannot fill {self.name} (count={self.count}) from shape {data.shape}"
            )
        if self._cow_shared:
            self.array = self.array.copy()
            self._cow_shared = False
        if self.element_type.is_float:
            self.array[:] = data.astype(self.array.dtype)
        else:
            self.array[:] = data.astype(np.int64).astype(self.array.dtype)


class Memory:
    """The VM's address space: a registry of :class:`DataObject` allocations."""

    #: Guard gap (bytes) left between consecutive allocations.
    GUARD_GAP = 256

    def __init__(self, base_address: int = 0x10000) -> None:
        self._next_address = base_address
        self._objects: Dict[str, DataObject] = {}
        #: Parallel sorted arrays for address resolution.
        self._bases: List[int] = []
        self._by_base: List[DataObject] = []
        self._stack_counter = 0

    # ------------------------------------------------------------------ #
    # allocation
    # ------------------------------------------------------------------ #
    def allocate(
        self,
        name: str,
        element_type: IRType,
        count: int,
        initial: Optional[Sequence[Number]] = None,
        is_stack: bool = False,
    ) -> DataObject:
        """Allocate ``count`` elements of ``element_type`` under ``name``."""
        if count <= 0:
            raise ValueError(f"data object {name!r} must have a positive element count")
        if name in self._objects:
            raise ValueError(f"data object {name!r} already allocated")
        base = self._next_address
        obj = DataObject(
            name=name,
            element_type=element_type,
            count=count,
            base=base,
            is_stack=is_stack,
            array=np.zeros(count, dtype=dtype_for(element_type)),
        )
        if initial is not None:
            obj.fill_from(initial)
        self._next_address = obj.end + self.GUARD_GAP
        self._objects[name] = obj
        position = bisect.bisect_left(self._bases, base)
        self._bases.insert(position, base)
        self._by_base.insert(position, obj)
        return obj

    def allocate_stack(self, hint: str, element_type: IRType, count: int) -> DataObject:
        """Allocate an anonymous local slot (kernel local variable)."""
        self._stack_counter += 1
        return self.allocate(
            f"%stack.{self._stack_counter}.{hint}", element_type, count, is_stack=True
        )

    def release(self, obj: DataObject) -> None:
        """Remove an allocation (used when a function frame is popped)."""
        if obj.name not in self._objects:
            return
        del self._objects[obj.name]
        position = bisect.bisect_left(self._bases, obj.base)
        if position < len(self._bases) and self._bases[position] == obj.base:
            self._bases.pop(position)
            self._by_base.pop(position)

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def object(self, name: str) -> DataObject:
        try:
            return self._objects[name]
        except KeyError:
            raise KeyError(f"no data object named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._objects

    @property
    def objects(self) -> Dict[str, DataObject]:
        """Mapping of name → data object (live view, do not mutate)."""
        return self._objects

    def data_objects(self, include_stack: bool = False) -> List[DataObject]:
        """All allocations, optionally excluding compiler-generated locals."""
        return [
            obj
            for obj in self._objects.values()
            if include_stack or not obj.is_stack
        ]

    def resolve(self, address: int) -> Tuple[DataObject, int]:
        """Map a byte address to ``(object, element index)`` or fault."""
        position = bisect.bisect_right(self._bases, address) - 1
        if position < 0:
            raise SegmentationFault(address)
        obj = self._by_base[position]
        if not obj.contains(address):
            raise SegmentationFault(address)
        return obj, obj.index_of(address)

    # ------------------------------------------------------------------ #
    # typed access
    # ------------------------------------------------------------------ #
    def load(self, address: int, value_type: IRType) -> Number:
        """Load a value of ``value_type`` from ``address``."""
        obj, index = self.resolve(address)
        self._check_access_type(obj, value_type, address)
        return obj.get(index)

    def store(self, address: int, value_type: IRType, value: Number) -> None:
        """Store ``value`` (of ``value_type``) to ``address``."""
        obj, index = self.resolve(address)
        self._check_access_type(obj, value_type, address)
        obj.set(index, value)

    @staticmethod
    def _check_access_type(obj: DataObject, value_type: IRType, address: int) -> None:
        if value_type.size_bytes != obj.element_size or (
            value_type.is_float != obj.element_type.is_float
        ):
            raise SegmentationFault(
                address,
                f"access of type {value_type} into {obj.name} "
                f"(element type {obj.element_type})",
            )

    def flip_bit_at(self, address: int, bit: int) -> Number:
        """Flip one bit of the element containing ``address``; return new value."""
        obj, index = self.resolve(address)
        raw = value_to_bits(obj.get(index), obj.element_type)
        flipped = raw ^ (1 << bit)
        new_value = bits_to_value(flipped, obj.element_type)
        obj.set(index, new_value)
        return new_value

    # ------------------------------------------------------------------ #
    # copy-on-write forks (batched replay)
    # ------------------------------------------------------------------ #
    def fork(self) -> "Memory":
        """A copy-on-write clone of the complete address space.

        The clone sees the exact current state (same objects, same base
        addresses, same allocator counters) but owns its own registry, so
        allocations and releases on either side are invisible to the other.
        Backing arrays are *shared* until written: both sides are flagged
        ``_cow_shared`` and the first typed write (``set``/``fill_from``)
        on either side copies that object's array privately.  Forking is
        therefore O(objects), not O(bytes) — the cheap divergence-window
        isolation the batched replay scheduler forks per fault.
        """
        clone = Memory.__new__(Memory)
        clone._next_address = self._next_address
        clone._stack_counter = self._stack_counter
        clone._objects = {}
        for name, obj in self._objects.items():
            obj._cow_shared = True
            twin = DataObject(
                name=obj.name,
                element_type=obj.element_type,
                count=obj.count,
                base=obj.base,
                is_stack=obj.is_stack,
                array=obj.array,
            )
            twin._cow_shared = True
            clone._objects[name] = twin
        clone._bases = list(self._bases)
        clone._by_base = [clone._objects[obj.name] for obj in self._by_base]
        return clone

    # ------------------------------------------------------------------ #
    # full-state images (engine checkpointing)
    # ------------------------------------------------------------------ #
    def capture_image(self) -> "MemoryImage":
        """Copy the complete address-space state (all objects, stack
        included, plus the allocator counters) into a standalone image."""
        return MemoryImage(
            next_address=self._next_address,
            stack_counter=self._stack_counter,
            objects=tuple(
                (
                    obj.name,
                    obj.element_type,
                    obj.count,
                    obj.base,
                    obj.is_stack,
                    obj.array.tobytes(),
                )
                for obj in self._objects.values()
            ),
        )

    def restore_image(self, image: "MemoryImage") -> None:
        """Reset the address space to ``image`` exactly.

        Objects allocated after the capture disappear; released ones come
        back; the allocator counters rewind so replayed ``alloca`` sequences
        reproduce the captured run's addresses and stack-slot names.
        """
        self._next_address = image.next_address
        self._stack_counter = image.stack_counter
        self._objects = {}
        pairs: List[Tuple[int, DataObject]] = []
        for name, element_type, count, base, is_stack, raw in image.objects:
            array = np.frombuffer(raw, dtype=dtype_for(element_type)).copy()
            obj = DataObject(
                name=name,
                element_type=element_type,
                count=count,
                base=base,
                is_stack=is_stack,
                array=array,
            )
            self._objects[name] = obj
            pairs.append((base, obj))
        pairs.sort(key=lambda pair: pair[0])
        self._bases = [base for base, _ in pairs]
        self._by_base = [obj for _, obj in pairs]

    def matches_image(self, image: "MemoryImage") -> bool:
        """Bit-exact comparison of the live state against a captured image."""
        if (
            self._next_address != image.next_address
            or self._stack_counter != image.stack_counter
            or len(self._objects) != len(image.objects)
        ):
            return False
        for name, element_type, count, base, is_stack, raw in image.objects:
            obj = self._objects.get(name)
            if (
                obj is None
                or obj.element_type != element_type
                or obj.count != count
                or obj.base != base
                or obj.is_stack != is_stack
                or obj.array.tobytes() != raw
            ):
                return False
        return True

    # ------------------------------------------------------------------ #
    # snapshots (golden-run / faulty-run comparisons)
    # ------------------------------------------------------------------ #
    def snapshot(self, names: Optional[Iterable[str]] = None) -> Dict[str, np.ndarray]:
        """Copy the contents of the named (default: all non-stack) objects."""
        selected = (
            [self.object(n) for n in names]
            if names is not None
            else self.data_objects(include_stack=False)
        )
        return {obj.name: obj.values() for obj in selected}

    def restore(self, snapshot: Dict[str, np.ndarray]) -> None:
        """Restore object contents captured by :meth:`snapshot`."""
        for name, values in snapshot.items():
            self.object(name).fill_from(values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Memory: {len(self._objects)} objects, next={self._next_address:#x}>"


@dataclass(frozen=True)
class MemoryImage:
    """Standalone copy of a :class:`Memory`'s complete state.

    Arrays are stored as raw bytes so images are immutable, cheap to compare
    (``tobytes`` equality is a memcmp) and safe to share between the
    checkpoint schedule and concurrent replays.
    """

    next_address: int
    stack_counter: int
    #: ``(name, element_type, count, base, is_stack, raw_bytes)`` per object,
    #: in allocation (insertion) order.
    objects: Tuple[Tuple[str, IRType, int, int, bool, bytes], ...]
