"""Interpreter for the MOARD IR with tracing and fault hooks.

The interpreter executes one entry function (plus everything it calls)
against a :class:`~repro.vm.memory.Memory` populated with the workload's
data objects.  While executing it can

* record a dynamic trace (:class:`~repro.tracing.trace.Trace`) — the input of
  the MOARD trace analysis, and
* apply one deterministic single-bit fault (:class:`~repro.vm.faults.FaultSpec`)
  — the mechanism behind the deterministic / exhaustive / random fault
  injectors in :mod:`repro.core`.

Numeric semantics follow the usual C/LLVM rules on a 64-bit machine:
fixed-width two's-complement integers with wrapping, IEEE-754 doubles and
floats, truncation toward zero for ``sdiv``, shift amounts taken modulo the
bit width.  Integer division by zero and out-of-bounds memory accesses raise
(:class:`~repro.vm.errors.ArithmeticFault`,
:class:`~repro.vm.errors.SegmentationFault`) so fault-injection campaigns can
classify those runs as crashes, exactly as a native execution would SIGFPE /
SIGSEGV.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.frontend.intrinsics import INTRINSICS
from repro.ir.function import Function, Module
from repro.ir.instructions import (
    FCmpPredicate,
    ICmpPredicate,
    Instruction,
    Opcode,
)
from repro.ir.types import F32, F64, IRType, PointerType
from repro.ir.values import Argument, Constant, UndefValue, Value
from repro.tracing.events import OperandKind, TraceEvent
from repro.tracing.trace import Trace
from repro.vm.bits import (
    bits_to_value,
    flip_bit,
    float32_from_bits,
    float32_to_bits,
    to_signed,
    to_unsigned,
    value_to_bits,
)
from repro.vm import semantics
from repro.vm.errors import (
    ArithmeticFault,
    StepLimitExceeded,
    UnknownIntrinsic,
    VMError,
)
from repro.vm.faults import FaultSpec, FaultTarget
from repro.vm.memory import DataObject, Memory

Number = Union[int, float]


def prepare_arguments(
    func: Function, args: Union[Dict[str, object], Sequence[object]]
) -> List[Number]:
    """Marshal entry-point arguments into runtime values.

    ``args`` may be a mapping from parameter names or a positional sequence.
    Pointer parameters accept :class:`DataObject` instances (their base
    address is passed) or raw integer addresses; scalar parameters accept
    Python numbers.  Shared by the tree-walking :class:`Interpreter` and the
    pre-decoded :class:`~repro.vm.engine.Engine`.
    """
    if isinstance(args, dict):
        missing = [a.name for a in func.args if a.name not in args]
        if missing:
            raise VMError(f"missing arguments for {func.name}: {missing}")
        raw = [args[a.name] for a in func.args]
    else:
        raw = list(args)
        if len(raw) != len(func.args):
            raise VMError(
                f"{func.name} expects {len(func.args)} arguments, got {len(raw)}"
            )
    values: List[Number] = []
    for formal, actual in zip(func.args, raw):
        if isinstance(actual, DataObject):
            if not formal.type.is_pointer:
                raise VMError(
                    f"argument {formal.name} of {func.name} is scalar but got a "
                    f"data object"
                )
            values.append(actual.base)
        elif isinstance(actual, (int, float)):
            if formal.type.is_float:
                values.append(float(actual))
            elif formal.type.is_integer:
                values.append(int(actual))
            else:
                values.append(int(actual))  # raw address
        else:
            raise VMError(
                f"unsupported argument value {actual!r} for {formal.name}"
            )
    return values


@dataclass
class ExecutionResult:
    """Outcome of one (traced or faulty) execution."""

    return_value: Optional[Number]
    steps: int
    trace: Optional[Trace]


class _Frame:
    """Per-call execution state."""

    __slots__ = ("env", "producers", "stack_objects")

    def __init__(self) -> None:
        #: value uid -> runtime value
        self.env: Dict[int, Number] = {}
        #: value uid -> dynamic id of the event that produced it (-1 if none)
        self.producers: Dict[int, int] = {}
        self.stack_objects: List[DataObject] = []


class Interpreter:
    """Execute IR functions over a :class:`Memory`."""

    def __init__(
        self,
        module: Module,
        memory: Memory,
        trace: Optional[Trace] = None,
        fault: Optional[FaultSpec] = None,
        max_steps: int = 5_000_000,
        max_call_depth: int = 200,
    ) -> None:
        self.module = module
        self.memory = memory
        self.trace = trace
        self.fault = fault
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        self._dyn = 0
        self._depth = 0
        #: byte address -> dynamic id of the store that last wrote it
        self._last_writer: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # public entry point
    # ------------------------------------------------------------------ #
    def run(
        self,
        function_name: str,
        args: Union[Dict[str, object], Sequence[object]],
    ) -> ExecutionResult:
        """Execute ``function_name`` with ``args``.

        ``args`` may be a mapping from parameter names or a positional
        sequence.  Pointer parameters accept :class:`DataObject` instances
        (their base address is passed) or raw integer addresses; scalar
        parameters accept Python numbers.
        """
        func = self.module.get_function(function_name)
        arg_values = self._prepare_arguments(func, args)
        value = self._exec_function(func, arg_values, [-1] * len(arg_values))
        return ExecutionResult(return_value=value, steps=self._dyn, trace=self.trace)

    @property
    def steps_executed(self) -> int:
        return self._dyn

    # ------------------------------------------------------------------ #
    # argument marshalling
    # ------------------------------------------------------------------ #
    def _prepare_arguments(
        self, func: Function, args: Union[Dict[str, object], Sequence[object]]
    ) -> List[Number]:
        return prepare_arguments(func, args)

    # ------------------------------------------------------------------ #
    # execution core
    # ------------------------------------------------------------------ #
    def _exec_function(
        self,
        func: Function,
        arg_values: Sequence[Number],
        arg_producers: Sequence[int],
    ) -> Optional[Number]:
        if self._depth >= self.max_call_depth:
            raise VMError(f"call depth limit ({self.max_call_depth}) exceeded")
        self._depth += 1
        frame = _Frame()
        for formal, value, producer in zip(func.args, arg_values, arg_producers):
            frame.env[formal.uid] = value
            frame.producers[formal.uid] = producer

        block = func.entry
        prev_block = None
        try:
            while True:
                branched = False
                for instr in block.instructions:
                    outcome = self._exec_instruction(func, frame, instr, prev_block)
                    if instr.opcode is Opcode.RET:
                        return outcome
                    if instr.opcode is Opcode.BR:
                        prev_block, block = block, outcome
                        branched = True
                        break
                if not branched:
                    raise VMError(
                        f"block {block.label} in {func.name} fell through without "
                        f"a terminator"
                    )
        finally:
            self._depth -= 1
            for obj in frame.stack_objects:
                self.memory.release(obj)

    # ------------------------------------------------------------------ #
    # operand resolution and fault application
    # ------------------------------------------------------------------ #
    def _resolve_operand(
        self, frame: _Frame, operand: Value
    ) -> Tuple[Number, int, OperandKind]:
        if isinstance(operand, Constant):
            return operand.value, -1, OperandKind.CONSTANT
        if isinstance(operand, UndefValue):
            return 0, -1, OperandKind.CONSTANT
        if isinstance(operand, Argument):
            return (
                frame.env[operand.uid],
                frame.producers.get(operand.uid, -1),
                OperandKind.ARGUMENT,
            )
        try:
            value = frame.env[operand.uid]
        except KeyError:
            raise VMError(
                f"use of value {operand.short()} before definition"
            ) from None
        return value, frame.producers.get(operand.uid, -1), OperandKind.INSTRUCTION

    def _maybe_fault_operands(
        self, instr: Instruction, values: List[Number]
    ) -> List[Number]:
        fault = self.fault
        if (
            fault is not None
            and fault.target is FaultTarget.OPERAND
            and fault.dynamic_id == self._dyn
        ):
            index = fault.operand_index
            if index >= len(values):
                raise VMError(
                    f"fault operand index {index} out of range for "
                    f"{instr.opcode.value} with {len(values)} operands"
                )
            values = list(values)
            values[index] = flip_bit(
                values[index], fault.bit, instr.operands[index].type
            )
        return values

    def _maybe_fault_result(self, instr: Instruction, result: Number) -> Number:
        fault = self.fault
        if (
            fault is not None
            and fault.target is FaultTarget.RESULT
            and fault.dynamic_id == self._dyn
            and instr.has_result
        ):
            return flip_bit(result, fault.bit, instr.type)
        return result

    # ------------------------------------------------------------------ #
    # single instruction execution
    # ------------------------------------------------------------------ #
    def _exec_instruction(
        self,
        func: Function,
        frame: _Frame,
        instr: Instruction,
        prev_block,
    ):
        if self._dyn >= self.max_steps:
            raise StepLimitExceeded(self.max_steps)

        resolved = [self._resolve_operand(frame, op) for op in instr.operands]
        values = [r[0] for r in resolved]
        producers = tuple(r[1] for r in resolved)
        kinds = tuple(r[2] for r in resolved)
        values = self._maybe_fault_operands(instr, values)

        opcode = instr.opcode
        if opcode is Opcode.CALL and (instr.callee or "") not in INTRINSICS:
            return self._exec_user_call(func, frame, instr, values, producers, kinds)
        result: Optional[Number] = None
        address: Optional[int] = None
        object_name: Optional[str] = None
        element_index: Optional[int] = None
        writer_id = -1
        taken_label: Optional[str] = None
        branch_target = None

        if opcode is Opcode.ALLOCA:
            pointee = instr.type.pointee  # type: ignore[union-attr]
            obj = self.memory.allocate_stack(
                instr.name or "tmp", pointee, instr.alloca_count
            )
            frame.stack_objects.append(obj)
            result = obj.base
        elif opcode is Opcode.LOAD:
            address = int(values[0])
            obj, element_index = self.memory.resolve(address)
            object_name = obj.name
            result = self.memory.load(address, instr.type)
            writer_id = self._last_writer.get(address, -1)
        elif opcode is Opcode.STORE:
            address = int(values[1])
            obj, element_index = self.memory.resolve(address)
            object_name = obj.name
            fault = self.fault
            if (
                fault is not None
                and fault.target is FaultTarget.STORE_DEST_OLD
                and fault.dynamic_id == self._dyn
            ):
                self.memory.flip_bit_at(address, fault.bit)
            self.memory.store(address, instr.operands[0].type, values[0])
            self._last_writer[address] = self._dyn
        elif opcode is Opcode.GEP:
            pointee = instr.operands[0].type.pointee  # type: ignore[union-attr]
            result = int(values[0]) + int(values[1]) * pointee.size_bytes
        elif opcode is Opcode.BR:
            if len(instr.targets) == 1:
                branch_target = instr.targets[0]
            else:
                branch_target = instr.targets[0] if values[0] else instr.targets[1]
            taken_label = branch_target.label
        elif opcode is Opcode.RET:
            result = values[0] if values else None
        elif opcode is Opcode.CALL:
            result = self._exec_intrinsic_call(instr, values)
        elif opcode is Opcode.PHI:
            result = self._exec_phi(instr, values, prev_block)
        elif opcode is Opcode.SELECT:
            result = semantics.eval_select(values)
        elif opcode is Opcode.ICMP:
            result = semantics.eval_icmp(instr.predicate, instr.operands[0].type, values)
        elif opcode is Opcode.FCMP:
            result = semantics.eval_fcmp(instr.predicate, values)
        elif opcode is Opcode.FNEG:
            result = semantics.eval_fneg(values[0])
        elif instr.is_binary:
            result = semantics.eval_binary(opcode, instr.type, values)
        else:
            result = semantics.eval_conversion(
                opcode, instr.operands[0].type, instr.type, values[0]
            )

        if instr.has_result and opcode is not Opcode.CALL:
            result = self._maybe_fault_result(instr, result)
        if instr.has_result:
            frame.env[instr.uid] = result
            frame.producers[instr.uid] = self._dyn

        if self.trace is not None:
            self.trace.append(
                TraceEvent(
                    dynamic_id=self._dyn,
                    opcode=opcode,
                    function=func.name,
                    block=instr.parent.label if instr.parent else "?",
                    static_uid=instr.uid,
                    source_line=instr.source_line,
                    operand_values=tuple(values),
                    operand_types=tuple(op.type for op in instr.operands),
                    operand_producers=producers,
                    operand_kinds=kinds,
                    result_value=result if instr.has_result else None,
                    result_type=instr.type if instr.has_result else None,
                    predicate=instr.predicate.value if instr.predicate else None,
                    callee=instr.callee,
                    address=address,
                    object_name=object_name,
                    element_index=element_index,
                    writer_id=writer_id,
                    taken_label=taken_label,
                )
            )
        self._dyn += 1

        if opcode is Opcode.BR:
            return branch_target
        if opcode is Opcode.RET:
            return result
        return result

    # ------------------------------------------------------------------ #
    # opcode families
    # ------------------------------------------------------------------ #
    def _exec_intrinsic_call(self, instr: Instruction, values: List[Number]) -> Number:
        return semantics.eval_intrinsic(instr.callee or "", instr.type, values)

    def _exec_user_call(
        self,
        func: Function,
        frame: _Frame,
        instr: Instruction,
        values: List[Number],
        producers: Tuple[int, ...],
        kinds: Tuple[OperandKind, ...],
    ) -> Optional[Number]:
        """Execute a call to another function in the module.

        The call event is recorded *before* the callee's instructions so
        dynamic ids stay monotonically ordered; the argument producer links
        are forwarded into the callee frame so propagation analysis can
        follow corrupted values across the call boundary.
        """
        callee = instr.callee or ""
        if callee not in self.module:
            raise UnknownIntrinsic(f"call to unknown function {callee!r}")
        callee_func = self.module.get_function(callee)
        call_dyn_id = self._dyn
        if self.trace is not None:
            self.trace.append(
                TraceEvent(
                    dynamic_id=call_dyn_id,
                    opcode=Opcode.CALL,
                    function=func.name,
                    block=instr.parent.label if instr.parent else "?",
                    static_uid=instr.uid,
                    source_line=instr.source_line,
                    operand_values=tuple(values),
                    operand_types=tuple(op.type for op in instr.operands),
                    operand_producers=producers,
                    operand_kinds=kinds,
                    result_value=None,
                    result_type=instr.type if instr.has_result else None,
                    predicate=None,
                    callee=callee,
                    address=None,
                    object_name=None,
                    element_index=None,
                    writer_id=-1,
                    taken_label=None,
                )
            )
        self._dyn += 1
        result = self._exec_function(callee_func, values, list(producers))
        if instr.has_result:
            if result is None:
                raise VMError(f"call to {callee} returned no value")
            frame.env[instr.uid] = result
            frame.producers[instr.uid] = call_dyn_id
        return result

    def _exec_phi(self, instr: Instruction, values: List[Number], prev_block) -> Number:
        if prev_block is None:
            raise VMError("phi executed in the entry block")
        for value, block in zip(values, instr.incoming_blocks):
            if block is prev_block:
                return value
        raise VMError(
            f"phi has no incoming value for predecessor {prev_block.label}"
        )
