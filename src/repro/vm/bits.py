"""Bit-level representation helpers.

Both the VM's fault hooks and the analytic masking rules in
:mod:`repro.core.masking` need to move between runtime values (Python
ints/floats) and their fixed-width bit representations, and to flip single
bits in either.  Keeping this in one module guarantees the injector and the
model reason about exactly the same bit patterns — a mismatch here would
silently skew every aDVF number.
"""

from __future__ import annotations

import struct
from typing import Union

from repro.ir.types import IRType

Number = Union[int, float]


# ---------------------------------------------------------------------- #
# integer <-> unsigned representation
# ---------------------------------------------------------------------- #
def to_unsigned(value: int, bits: int) -> int:
    """Two's-complement encode ``value`` into ``bits`` bits (non-negative int)."""
    mask = (1 << bits) - 1
    return value & mask


def to_signed(value: int, bits: int) -> int:
    """Interpret the low ``bits`` bits of ``value`` as a signed integer."""
    value &= (1 << bits) - 1
    sign_bit = 1 << (bits - 1)
    if bits > 1 and value & sign_bit:
        return value - (1 << bits)
    return value


# ---------------------------------------------------------------------- #
# float <-> raw bits
# ---------------------------------------------------------------------- #
def float64_to_bits(value: float) -> int:
    """IEEE-754 binary64 representation as an unsigned integer."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def float64_from_bits(bits: int) -> float:
    """Inverse of :func:`float64_to_bits`."""
    return struct.unpack("<d", struct.pack("<Q", bits & ((1 << 64) - 1)))[0]


def float32_to_bits(value: float) -> int:
    """IEEE-754 binary32 representation as an unsigned integer."""
    return struct.unpack("<I", struct.pack("<f", value))[0]


def float32_from_bits(bits: int) -> float:
    """Inverse of :func:`float32_to_bits`."""
    return struct.unpack("<f", struct.pack("<I", bits & ((1 << 32) - 1)))[0]


# ---------------------------------------------------------------------- #
# type-directed conversions
# ---------------------------------------------------------------------- #
def bit_width_of(ir_type: IRType) -> int:
    """Number of architecturally-visible bits of a value of ``ir_type``.

    Pointers are 64-bit machine words; ``i1`` occupies a single bit for the
    purpose of error-pattern enumeration (a flip of its only bit).
    """
    if ir_type.is_void:
        raise TypeError("void values have no bit representation")
    return ir_type.bits


def value_to_bits(value: Number, ir_type: IRType) -> int:
    """Raw bit representation of ``value`` when stored with type ``ir_type``."""
    if ir_type.is_float:
        if ir_type.bits == 64:
            return float64_to_bits(float(value))
        return float32_to_bits(float(value))
    return to_unsigned(int(value), ir_type.bits)


def bits_to_value(bits: int, ir_type: IRType) -> Number:
    """Decode a raw bit pattern back into a runtime value of ``ir_type``."""
    if ir_type.is_float:
        if ir_type.bits == 64:
            return float64_from_bits(bits)
        return float32_from_bits(bits)
    if ir_type.is_pointer:
        return to_unsigned(bits, 64)
    return to_signed(bits, ir_type.bits)


def flip_bit(value: Number, bit: int, ir_type: IRType) -> Number:
    """Return ``value`` with bit ``bit`` (0 = LSB) flipped under ``ir_type``.

    Raises
    ------
    ValueError
        If ``bit`` is outside the representation of ``ir_type``.
    """
    width = bit_width_of(ir_type)
    if not 0 <= bit < width:
        raise ValueError(f"bit {bit} outside the {width}-bit representation of {ir_type}")
    raw = value_to_bits(value, ir_type)
    return bits_to_value(raw ^ (1 << bit), ir_type)


def hamming_distance(a: Number, b: Number, ir_type: IRType) -> int:
    """Number of differing bits between two values of the same type."""
    return bin(value_to_bits(a, ir_type) ^ value_to_bits(b, ir_type)).count("1")
