"""Tracing virtual machine for the MOARD IR.

The VM plays the role of the instrumented native execution in the original
MOARD tool-chain: it executes compiled kernels against a flat,
byte-addressable memory populated with named *data objects*, and emits a
dynamic instruction trace (see :mod:`repro.tracing`) carrying operand
values, producer links and memory-address → data-object resolution.  It also
hosts the deterministic bit-flip fault hooks used by the fault injectors in
:mod:`repro.core`.

Public API
----------
:class:`~repro.vm.memory.Memory`, :class:`~repro.vm.memory.DataObject`,
:class:`~repro.vm.interpreter.Interpreter`,
:class:`~repro.vm.interpreter.ExecutionResult`,
:class:`~repro.vm.faults.FaultSpec`, the error types in
:mod:`repro.vm.errors`, and the bit-manipulation helpers in
:mod:`repro.vm.bits`.
"""

from repro.vm.bits import (
    bit_width_of,
    bits_to_value,
    flip_bit,
    float32_from_bits,
    float32_to_bits,
    float64_from_bits,
    float64_to_bits,
    to_signed,
    to_unsigned,
    value_to_bits,
)
from repro.vm.errors import (
    VMError,
    SegmentationFault,
    StepLimitExceeded,
    ArithmeticFault,
    UnknownIntrinsic,
)
from repro.vm.faults import FaultSpec, FaultTarget
from repro.vm.memory import DataObject, Memory, MemoryImage
from repro.vm.interpreter import ExecutionResult, Interpreter, prepare_arguments
from repro.vm.engine import DecodedProgram, Engine, Snapshot
from repro.vm.registers import RegisterAllocation, RegisterFile, allocate_registers

__all__ = [
    "bit_width_of",
    "bits_to_value",
    "flip_bit",
    "float32_from_bits",
    "float32_to_bits",
    "float64_from_bits",
    "float64_to_bits",
    "to_signed",
    "to_unsigned",
    "value_to_bits",
    "VMError",
    "SegmentationFault",
    "StepLimitExceeded",
    "ArithmeticFault",
    "UnknownIntrinsic",
    "FaultSpec",
    "FaultTarget",
    "DataObject",
    "Memory",
    "MemoryImage",
    "ExecutionResult",
    "Interpreter",
    "prepare_arguments",
    "DecodedProgram",
    "Engine",
    "Snapshot",
    "RegisterAllocation",
    "RegisterFile",
    "allocate_registers",
]
