"""Runtime error types raised by the virtual machine.

Fault-injection campaigns rely on these being distinguishable: a
:class:`SegmentationFault` caused by a corrupted index array is a different
outcome class (crash) than a silently wrong numerical result, and the paper's
evaluation of ``colidx`` in CG hinges on exactly this distinction.
"""

from __future__ import annotations


class VMError(Exception):
    """Base class for all VM runtime failures."""


class SegmentationFault(VMError):
    """A load or store touched an address outside every data object."""

    def __init__(self, address: int, note: str = "") -> None:
        message = f"segmentation fault at address {address:#x}"
        if note:
            message += f" ({note})"
        super().__init__(message)
        self.address = address


class StepLimitExceeded(VMError):
    """Execution exceeded the configured dynamic-instruction budget.

    Corrupted loop bounds routinely turn terminating kernels into infinite
    loops; the budget converts those into a deterministic "hang" outcome.
    """

    def __init__(self, limit: int) -> None:
        super().__init__(f"dynamic instruction limit of {limit} exceeded")
        self.limit = limit


class ArithmeticFault(VMError):
    """Integer division or remainder by zero."""


class UnknownIntrinsic(VMError):
    """A call targeted a function that is neither an intrinsic nor in the module."""
