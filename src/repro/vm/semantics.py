"""Pure evaluation semantics shared by the interpreter and the analyses.

The operation-level masking analysis and the error-propagation analysis both
need to *re-evaluate* instructions with perturbed operand values without
running the program.  To guarantee they reason about exactly the arithmetic
the VM executes, the numeric semantics live here as pure functions and the
interpreter delegates to them.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

from repro.frontend.intrinsics import INTRINSICS
from repro.ir.instructions import FCmpPredicate, ICmpPredicate, Opcode
from repro.ir.types import IRType
from repro.vm.bits import (
    bits_to_value,
    float32_from_bits,
    float32_to_bits,
    to_signed,
    to_unsigned,
    value_to_bits,
)
from repro.vm.errors import ArithmeticFault, VMError

Number = Union[int, float]


def float_divide(lhs: float, rhs: float) -> float:
    """IEEE-style division: finite/0 gives signed infinity, 0/0 gives NaN."""
    try:
        return lhs / rhs
    except ZeroDivisionError:
        if lhs == 0.0 or math.isnan(lhs):
            return float("nan")
        return math.copysign(float("inf"), lhs) * math.copysign(1.0, rhs)


def float_remainder(lhs: float, rhs: float) -> float:
    """``fmod`` with NaN on a zero divisor."""
    try:
        return math.fmod(lhs, rhs)
    except (ZeroDivisionError, ValueError):
        return float("nan")


def eval_binary(opcode: Opcode, result_type: IRType, values: Sequence[Number]) -> Number:
    """Evaluate an integer or floating-point binary instruction."""
    if opcode in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FREM):
        lhs, rhs = float(values[0]), float(values[1])
        if opcode is Opcode.FADD:
            return lhs + rhs
        if opcode is Opcode.FSUB:
            return lhs - rhs
        if opcode is Opcode.FMUL:
            return lhs * rhs
        if opcode is Opcode.FDIV:
            return float_divide(lhs, rhs)
        return float_remainder(lhs, rhs)

    bits = result_type.bits
    lhs, rhs = int(values[0]), int(values[1])
    if opcode is Opcode.ADD:
        raw = lhs + rhs
    elif opcode is Opcode.SUB:
        raw = lhs - rhs
    elif opcode is Opcode.MUL:
        raw = lhs * rhs
    elif opcode in (Opcode.SDIV, Opcode.SREM):
        if rhs == 0:
            raise ArithmeticFault("integer division by zero")
        quotient = abs(lhs) // abs(rhs)
        if (lhs < 0) != (rhs < 0):
            quotient = -quotient
        raw = quotient if opcode is Opcode.SDIV else lhs - quotient * rhs
    elif opcode in (Opcode.UDIV, Opcode.UREM):
        if rhs == 0:
            raise ArithmeticFault("integer division by zero")
        lhs_u, rhs_u = to_unsigned(lhs, bits), to_unsigned(rhs, bits)
        raw = lhs_u // rhs_u if opcode is Opcode.UDIV else lhs_u % rhs_u
    elif opcode is Opcode.SHL:
        raw = to_unsigned(lhs, bits) << (to_unsigned(rhs, bits) % bits)
    elif opcode is Opcode.LSHR:
        raw = to_unsigned(lhs, bits) >> (to_unsigned(rhs, bits) % bits)
    elif opcode is Opcode.ASHR:
        raw = lhs >> (to_unsigned(rhs, bits) % bits)
    elif opcode is Opcode.AND:
        raw = to_unsigned(lhs, bits) & to_unsigned(rhs, bits)
    elif opcode is Opcode.OR:
        raw = to_unsigned(lhs, bits) | to_unsigned(rhs, bits)
    elif opcode is Opcode.XOR:
        raw = to_unsigned(lhs, bits) ^ to_unsigned(rhs, bits)
    else:  # pragma: no cover - exhaustive over binary opcodes
        raise VMError(f"unhandled binary opcode {opcode}")
    return to_signed(raw, bits)


def eval_icmp(predicate: ICmpPredicate, operand_type: IRType, values: Sequence[Number]) -> int:
    """Evaluate an integer comparison (result is 0/1)."""
    lhs, rhs = int(values[0]), int(values[1])
    bits = operand_type.bits
    if predicate in (
        ICmpPredicate.ULT,
        ICmpPredicate.ULE,
        ICmpPredicate.UGT,
        ICmpPredicate.UGE,
    ):
        lhs, rhs = to_unsigned(lhs, bits), to_unsigned(rhs, bits)
    table = {
        ICmpPredicate.EQ: lhs == rhs,
        ICmpPredicate.NE: lhs != rhs,
        ICmpPredicate.SLT: lhs < rhs,
        ICmpPredicate.SLE: lhs <= rhs,
        ICmpPredicate.SGT: lhs > rhs,
        ICmpPredicate.SGE: lhs >= rhs,
        ICmpPredicate.ULT: lhs < rhs,
        ICmpPredicate.ULE: lhs <= rhs,
        ICmpPredicate.UGT: lhs > rhs,
        ICmpPredicate.UGE: lhs >= rhs,
    }
    return 1 if table[predicate] else 0


def eval_fcmp(predicate: FCmpPredicate, values: Sequence[Number]) -> int:
    """Evaluate an ordered floating-point comparison (NaN compares false)."""
    lhs, rhs = float(values[0]), float(values[1])
    if math.isnan(lhs) or math.isnan(rhs):
        return 0
    table = {
        FCmpPredicate.OEQ: lhs == rhs,
        FCmpPredicate.ONE: lhs != rhs,
        FCmpPredicate.OLT: lhs < rhs,
        FCmpPredicate.OLE: lhs <= rhs,
        FCmpPredicate.OGT: lhs > rhs,
        FCmpPredicate.OGE: lhs >= rhs,
    }
    return 1 if table[predicate] else 0


def eval_conversion(
    opcode: Opcode, source_type: IRType, target_type: IRType, value: Number
) -> Number:
    """Evaluate a conversion instruction."""
    if opcode is Opcode.TRUNC:
        return to_signed(int(value), target_type.bits)
    if opcode is Opcode.ZEXT:
        return to_unsigned(int(value), source_type.bits)
    if opcode is Opcode.SEXT:
        return int(value)
    if opcode is Opcode.FPTOSI:
        value_f = float(value)
        if math.isnan(value_f):
            return 0
        limit = (1 << (target_type.bits - 1)) - 1
        if value_f >= limit:
            return limit
        if value_f <= -limit - 1:
            return -limit - 1
        return int(value_f)
    if opcode is Opcode.SITOFP:
        return float(int(value))
    if opcode is Opcode.FPTRUNC:
        return float32_from_bits(float32_to_bits(float(value)))
    if opcode is Opcode.FPEXT:
        return float(value)
    if opcode is Opcode.BITCAST:
        return bits_to_value(value_to_bits(value, source_type), target_type)
    raise VMError(f"unhandled conversion opcode {opcode}")


def eval_intrinsic(name: str, result_type: IRType, values: Sequence[Number]) -> Number:
    """Evaluate one of the math intrinsics with IEEE-friendly error handling."""
    info = INTRINSICS[name]
    try:
        result = info.evaluate(*values)
    except (ValueError, OverflowError):
        result = float("nan")
    if result_type.is_integer:
        return to_signed(int(result), result_type.bits)
    return float(result)


def eval_fneg(value: Number) -> float:
    return -float(value)


def eval_select(values: Sequence[Number]) -> Number:
    return values[1] if values[0] else values[2]


def eval_gep(pointee_size: int, values: Sequence[Number]) -> int:
    """Pointer arithmetic of ``getelementptr``."""
    return int(values[0]) + int(values[1]) * pointee_size
