"""Pre-decoded execution engine with checkpointed snapshots.

The tree-walking :class:`~repro.vm.interpreter.Interpreter` re-derives the
same static facts on every dynamic step: operand classes (constant vs SSA
value vs argument) through ``isinstance`` chains, value environments through
per-frame dicts keyed by value uids, opcode dispatch through long chains of
enum comparisons, and trace metadata (block labels, operand types, operand
kinds) from the instruction objects.  For fault-injection campaigns — tens of
thousands of full executions of the same module — that per-step overhead
dominates.

This module lowers each :class:`~repro.ir.function.Function` *once* into a
flat array of :class:`DecodedOp` records:

* every operand is resolved at decode time to either a dense register-slot
  index or a literal constant, so the hot loop does a list index instead of a
  dict lookup plus ``isinstance`` checks;
* opcode families with pure semantics (arithmetic, comparisons, conversions,
  intrinsics) get a pre-bound evaluator (``op.fn``) so dispatch is one small
  integer compare;
* branch targets become program-counter indices and all trace-static fields
  (function name, block label, operand types/kinds, predicate) are attached
  to the op, so untraced runs never touch them.

On top of the decoded representation the engine supports **checkpointing**:
:class:`Snapshot` captures the complete dynamic state — the call stack with
its register files, the full memory image, and the dynamic-instruction
counter — and :meth:`Engine.resume` restores one and runs forward.  The
deterministic fault injectors in :mod:`repro.core` use this to replay only
the suffix of an execution after a fault site instead of re-running the
whole workload (see :mod:`repro.core.replay`).

Semantics are bit-identical to the interpreter: same dynamic-id numbering,
same fault hooks, same error types, and (when a full sink is attached) the
same :class:`~repro.tracing.events.TraceEvent` stream.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.frontend.intrinsics import INTRINSICS
from repro.ir.function import Function, Module
from repro.ir.instructions import Instruction, Opcode
from repro.ir.values import Argument, Constant, UndefValue
from repro.tracing.events import OperandKind, TraceEvent
from repro.vm import semantics
from repro.vm.bits import flip_bit
from repro.vm.errors import StepLimitExceeded, UnknownIntrinsic, VMError
from repro.vm.faults import FaultSpec, FaultTarget
from repro.vm.interpreter import ExecutionResult, prepare_arguments
from repro.vm.memory import Memory, MemoryImage

Number = Union[int, float]


class _Undef:
    """Sentinel stored in register slots that have not been written yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<undef>"


_UNDEF = _Undef()

#: Sentinel for "no pause scheduled" in the engine loop.
_NEVER = 1 << 62

# Decoded opcode kinds (small ints; if/elif chain ordered by frequency).
K_FN = 0            # pure evaluator bound at decode time (arith/cmp/conv/...)
K_LOAD = 1
K_STORE = 2
K_GEP = 3
K_BR_COND = 4
K_BR = 5
K_CALL_INTRINSIC = 6
K_RET = 7
K_CALL_USER = 8
K_ALLOCA = 9
K_PHI = 10


class DecodedOp:
    """One pre-decoded instruction of a :class:`DecodedFunction`.

    ``src[i]`` is the register slot of operand *i*, or ``-1`` when the
    operand is a literal whose value sits in ``consts[i]``.
    """

    __slots__ = (
        "kind",
        "opcode",
        "dest",
        "src",
        "src_names",
        "consts",
        "fn",
        "result_type",
        "op_types",
        "op_kinds",
        "gep_size",
        "pc_true",
        "pc_false",
        "block_true",
        "block_false",
        "label_true",
        "label_false",
        "callee",
        "phi_by_block",
        "block_index",
        "function",
        "block_label",
        "static_uid",
        "source_line",
        "predicate_str",
        "has_result",
        "alloca_hint",
        "alloca_type",
        "alloca_count",
    )

    def __init__(self) -> None:
        self.fn = None
        self.gep_size = 0
        self.pc_true = -1
        self.pc_false = -1
        self.block_true = -1
        self.block_false = -1
        self.label_true = None
        self.label_false = None
        self.callee = None
        self.phi_by_block = None
        self.alloca_hint = ""
        self.alloca_type = None
        self.alloca_count = 1


class DecodedFunction:
    """A function lowered to a flat op array plus a dense register file."""

    __slots__ = ("name", "function", "ops", "nslots", "nargs", "block_labels")

    def __init__(self, function: Function) -> None:
        self.name = function.name
        self.function = function
        self.ops: List[DecodedOp] = []
        self.nargs = len(function.args)
        self.nslots = 0
        self.block_labels: List[str] = [b.label for b in function.blocks]


class DecodedProgram:
    """All functions of a module, decoded and cross-linked."""

    __slots__ = ("module", "functions")

    _CACHE_ATTR = "_decoded_program_cache"

    def __init__(self, module: Module) -> None:
        self.module = module
        # Callees stay names (resolved through ``functions`` at execution
        # time) so calls to unknown functions fault at runtime exactly like
        # the interpreter does.
        self.functions: Dict[str, DecodedFunction] = {
            func.name: _decode_function(func) for func in module
        }

    @classmethod
    def of(cls, module: Module) -> "DecodedProgram":
        """Decode ``module`` (cached on the module object)."""
        cached = getattr(module, cls._CACHE_ATTR, None)
        if cached is not None and cached.module is module:
            return cached
        program = cls(module)
        setattr(module, cls._CACHE_ATTR, program)
        return program

    @classmethod
    def invalidate(cls, module: Module) -> None:
        """Drop the decode cache (call after mutating the module's IR)."""
        if hasattr(module, cls._CACHE_ATTR):
            delattr(module, cls._CACHE_ATTR)


def _decode_function(func: Function) -> DecodedFunction:
    df = DecodedFunction(func)
    slots: Dict[int, int] = {}
    for arg in func.args:
        slots[arg.uid] = len(slots)
    for instr in func.instructions():
        if instr.has_result:
            slots[instr.uid] = len(slots)
    df.nslots = len(slots)

    block_index: Dict[int, int] = {id(b): i for i, b in enumerate(func.blocks)}
    block_pc: List[int] = []
    flat: List[Tuple[Instruction, int]] = []
    for bi, block in enumerate(func.blocks):
        block_pc.append(len(flat))
        if not block.is_terminated:
            raise VMError(
                f"block {block.label} in {func.name} fell through without "
                f"a terminator"
            )
        for instr in block.instructions:
            flat.append((instr, bi))

    for instr, bi in flat:
        df.ops.append(_decode_instruction(func, instr, bi, slots, block_index, block_pc))
    return df


def _operand_kind(operand) -> OperandKind:
    if isinstance(operand, (Constant, UndefValue)):
        return OperandKind.CONSTANT
    if isinstance(operand, Argument):
        return OperandKind.ARGUMENT
    return OperandKind.INSTRUCTION


def _decode_instruction(
    func: Function,
    instr: Instruction,
    bi: int,
    slots: Dict[int, int],
    block_index: Dict[int, int],
    block_pc: List[int],
) -> DecodedOp:
    op = DecodedOp()
    opcode = instr.opcode
    op.opcode = opcode
    op.block_index = bi
    op.function = func.name
    op.block_label = instr.parent.label if instr.parent else "?"
    op.static_uid = instr.uid
    op.source_line = instr.source_line
    op.result_type = instr.type
    op.has_result = instr.has_result
    op.dest = slots[instr.uid] if instr.has_result else -1
    op.predicate_str = instr.predicate.value if instr.predicate else None
    op.op_types = tuple(o.type for o in instr.operands)
    op.op_kinds = tuple(_operand_kind(o) for o in instr.operands)

    src: List[int] = []
    consts: List[Optional[Number]] = []
    for operand in instr.operands:
        if isinstance(operand, Constant):
            src.append(-1)
            consts.append(operand.value)
        elif isinstance(operand, UndefValue):
            src.append(-1)
            consts.append(0)
        else:
            src.append(slots[operand.uid])
            consts.append(None)
    op.src = tuple(src)
    op.src_names = tuple(operand.short() for operand in instr.operands)
    op.consts = tuple(consts)

    if opcode is Opcode.ALLOCA:
        op.kind = K_ALLOCA
        op.alloca_hint = instr.name or "tmp"
        op.alloca_type = instr.type.pointee  # type: ignore[union-attr]
        op.alloca_count = instr.alloca_count
    elif opcode is Opcode.LOAD:
        op.kind = K_LOAD
    elif opcode is Opcode.STORE:
        op.kind = K_STORE
    elif opcode is Opcode.GEP:
        op.kind = K_GEP
        op.gep_size = instr.operands[0].type.pointee.size_bytes  # type: ignore[union-attr]
    elif opcode is Opcode.BR:
        targets = instr.targets
        op.pc_true = block_pc[block_index[id(targets[0])]]
        op.block_true = block_index[id(targets[0])]
        op.label_true = targets[0].label
        if len(targets) == 1:
            op.kind = K_BR
        else:
            op.kind = K_BR_COND
            op.pc_false = block_pc[block_index[id(targets[1])]]
            op.block_false = block_index[id(targets[1])]
            op.label_false = targets[1].label
    elif opcode is Opcode.RET:
        op.kind = K_RET
    elif opcode is Opcode.CALL:
        callee = instr.callee or ""
        op.callee = callee
        if callee in INTRINSICS:
            op.kind = K_CALL_INTRINSIC
            info = INTRINSICS[callee]
            rtype = instr.type
            if rtype.is_integer:
                bits = rtype.bits
                evaluate = info.evaluate

                def _int_intrinsic(values, _eval=evaluate, _bits=bits):
                    try:
                        result = _eval(*values)
                    except (ValueError, OverflowError):
                        result = float("nan")
                    return semantics.to_signed(int(result), _bits)

                op.fn = _int_intrinsic
            else:
                evaluate = info.evaluate

                def _float_intrinsic(values, _eval=evaluate):
                    try:
                        return float(_eval(*values))
                    except (ValueError, OverflowError):
                        return float("nan")

                op.fn = _float_intrinsic
        else:
            op.kind = K_CALL_USER
    elif opcode is Opcode.PHI:
        op.kind = K_PHI
        op.phi_by_block = {
            block_index[id(block)]: position
            for position, block in enumerate(instr.incoming_blocks)
        }
    elif opcode is Opcode.SELECT:
        op.kind = K_FN
        op.fn = semantics.eval_select
    elif opcode is Opcode.ICMP:
        op.kind = K_FN
        predicate = instr.predicate
        operand_type = instr.operands[0].type

        def _icmp(values, _p=predicate, _t=operand_type):
            return semantics.eval_icmp(_p, _t, values)

        op.fn = _icmp
    elif opcode is Opcode.FCMP:
        op.kind = K_FN
        predicate = instr.predicate

        def _fcmp(values, _p=predicate):
            return semantics.eval_fcmp(_p, values)

        op.fn = _fcmp
    elif opcode is Opcode.FNEG:
        op.kind = K_FN
        op.fn = lambda values: -float(values[0])
    elif instr.is_binary:
        op.kind = K_FN
        rtype = instr.type

        def _binary(values, _op=opcode, _t=rtype):
            return semantics.eval_binary(_op, _t, values)

        op.fn = _binary
    else:
        op.kind = K_FN
        rtype = instr.type
        source_type = instr.operands[0].type

        def _conversion(values, _op=opcode, _s=source_type, _t=rtype):
            return semantics.eval_conversion(_op, _s, _t, values[0])

        op.fn = _conversion
    return op


class _Frame:
    """Per-call dynamic state of the decoded engine."""

    __slots__ = ("df", "pc", "prev_block", "regs", "prods", "stack_objects",
                 "ret_slot", "ret_dyn")

    def __init__(self, df: DecodedFunction) -> None:
        self.df = df
        self.pc = 0
        self.prev_block = -1
        self.regs: List[object] = [_UNDEF] * df.nslots
        self.prods: List[int] = [-1] * df.nslots
        self.stack_objects = []
        self.ret_slot = -1
        self.ret_dyn = -1


class _FrameImage:
    """Immutable copy of a frame used inside :class:`Snapshot`."""

    __slots__ = ("func_name", "pc", "prev_block", "regs", "prods",
                 "stack_names", "ret_slot", "ret_dyn")

    def __init__(self, frame: _Frame) -> None:
        self.func_name = frame.df.name
        self.pc = frame.pc
        self.prev_block = frame.prev_block
        self.regs = list(frame.regs)
        self.prods = list(frame.prods)
        self.stack_names = [obj.name for obj in frame.stack_objects]
        self.ret_slot = frame.ret_slot
        self.ret_dyn = frame.ret_dyn


def _values_bit_equal(a: object, b: object) -> bool:
    """Bit-exact register comparison (``-0.0 != 0.0``, NaN payload matters)."""
    if a is b:
        return True
    ta, tb = type(a), type(b)
    if ta is not tb:
        return False
    if ta is float:
        return struct.pack("<d", a) == struct.pack("<d", b)
    return a == b


class Snapshot:
    """Complete dynamic state of an :class:`Engine` at one dynamic id.

    Captures the call stack (register files, program counters, stack-object
    names), the full memory image and the dynamic-instruction counter.
    Snapshots are standalone: restoring one fully resets memory, including
    removing stack objects allocated after the capture point.
    """

    __slots__ = ("dyn", "frames", "memory", "last_writer")

    def __init__(
        self,
        dyn: int,
        frames: List[_FrameImage],
        memory: MemoryImage,
        last_writer: Optional[Dict[int, int]],
    ) -> None:
        self.dyn = dyn
        self.frames = frames
        self.memory = memory
        self.last_writer = last_writer

    def matches_live(self, engine: "Engine") -> bool:
        """Whether the engine's live state is bit-identical to this snapshot.

        Used by checkpointed replay to detect that a faulty execution has
        converged back onto the golden execution: from a matching state the
        remainder of the run is deterministic and therefore identical.
        Producer links and the load-writer index are excluded — they are
        trace metadata with no influence on future computation.
        """
        if engine._dyn != self.dyn:
            return False
        frames = engine._frames
        if len(frames) != len(self.frames):
            return False
        for live, image in zip(frames, self.frames):
            if (
                live.df.name != image.func_name
                or live.pc != image.pc
                or live.prev_block != image.prev_block
                or live.ret_slot != image.ret_slot
                or live.ret_dyn != image.ret_dyn
            ):
                return False
            if [obj.name for obj in live.stack_objects] != image.stack_names:
                return False
            regs = live.regs
            if len(regs) != len(image.regs):
                return False
            for a, b in zip(regs, image.regs):
                if not _values_bit_equal(a, b):
                    return False
        return engine.memory.matches_image(self.memory)


class Engine:
    """Execute pre-decoded IR over a :class:`Memory`.

    Drop-in executor with the same contract as
    :class:`~repro.vm.interpreter.Interpreter` (``run`` →
    :class:`ExecutionResult`, same error types, same fault hooks, same
    dynamic-id numbering) plus:

    * ``sink`` — any :class:`~repro.tracing.sinks.TraceSink`; sinks with
      ``wants_events = False`` skip event construction entirely;
    * ``snapshot_interval`` — capture a :class:`Snapshot` every N dynamic
      instructions (position 0 included) into :attr:`snapshots`;
    * ``snapshot_budget`` — cap the snapshot count without knowing the run
      length in advance: when the schedule fills up, every other snapshot
      is dropped and the interval doubles (all retained positions stay
      multiples of the final interval);
    * :meth:`resume` — restore a snapshot and run to completion, optionally
      detecting convergence against a golden snapshot schedule.
    """

    def __init__(
        self,
        module: Module,
        memory: Memory,
        sink=None,
        fault: Optional[FaultSpec] = None,
        max_steps: int = 5_000_000,
        max_call_depth: int = 200,
        snapshot_interval: int = 0,
        snapshot_budget: Optional[int] = None,
        program: Optional[DecodedProgram] = None,
    ) -> None:
        self.module = module
        self.memory = memory
        self.sink = sink
        self.fault = fault
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        self.program = program if program is not None else DecodedProgram.of(module)
        self.snapshot_interval = snapshot_interval
        self.snapshot_budget = snapshot_budget
        self.snapshots: List[Snapshot] = []
        self.converged = False
        self._dyn = 0
        self._frames: List[_Frame] = []
        self._last_writer: Dict[int, int] = {}
        self._next_capture = 0 if snapshot_interval else _NEVER
        self._golden_schedule: Optional[Sequence[Snapshot]] = None
        self._check_cursor = 0

    # ------------------------------------------------------------------ #
    # public entry points
    # ------------------------------------------------------------------ #
    @property
    def steps_executed(self) -> int:
        return self._dyn

    def run(
        self,
        function_name: str,
        args: Union[Dict[str, object], Sequence[object]],
    ) -> ExecutionResult:
        """Execute ``function_name`` with ``args`` (same contract as the
        interpreter's ``run``)."""
        func = self.module.get_function(function_name)
        values = prepare_arguments(func, args)
        df = self.program.functions[function_name]
        if len(self._frames) >= self.max_call_depth:
            raise VMError(f"call depth limit ({self.max_call_depth}) exceeded")
        frame = _Frame(df)
        frame.regs[: df.nargs] = values
        self._frames.append(frame)
        return self._loop()

    def resume(
        self,
        snapshot: Snapshot,
        golden_schedule: Optional[Sequence[Snapshot]] = None,
    ) -> ExecutionResult:
        """Restore ``snapshot`` and run forward to completion.

        When ``golden_schedule`` (the snapshot list of the fault-free run) is
        given and a fault is armed, the engine compares its state against the
        next golden snapshot after the fault site at every checkpoint
        position; on a bit-identical match it stops early with
        :attr:`converged` set — the remainder of the execution provably
        equals the golden run.
        """
        self.memory.restore_image(snapshot.memory)
        self._frames = []
        for image in snapshot.frames:
            df = self.program.functions[image.func_name]
            frame = _Frame(df)
            frame.pc = image.pc
            frame.prev_block = image.prev_block
            frame.regs = list(image.regs)
            frame.prods = list(image.prods)
            frame.stack_objects = [self.memory.object(n) for n in image.stack_names]
            frame.ret_slot = image.ret_slot
            frame.ret_dyn = image.ret_dyn
            self._frames.append(frame)
        self._dyn = snapshot.dyn
        self._last_writer = dict(snapshot.last_writer or {})
        self.converged = False
        # re-align snapshot capture to the first interval multiple strictly
        # after the restore point (the restore point itself is the snapshot
        # the caller already holds)
        if self.snapshot_interval:
            interval = self.snapshot_interval
            self._next_capture = (snapshot.dyn // interval + 1) * interval
        else:
            self._next_capture = _NEVER
        self._golden_schedule = None
        self._check_cursor = 0
        if golden_schedule and self.fault is not None:
            # first golden position strictly after the fault site (the fault
            # must have fired before a comparison can prove convergence)
            positions = [s.dyn for s in golden_schedule]
            cursor = 0
            while cursor < len(positions) and (
                positions[cursor] <= self.fault.dynamic_id
                or positions[cursor] <= snapshot.dyn
            ):
                cursor += 1
            if cursor < len(positions):
                self._golden_schedule = golden_schedule
                self._check_cursor = cursor
        return self._loop()

    # ------------------------------------------------------------------ #
    # pause handling (snapshot capture / convergence checks)
    # ------------------------------------------------------------------ #
    def _next_pause(self) -> int:
        check = (
            self._golden_schedule[self._check_cursor].dyn
            if self._golden_schedule is not None
            and self._check_cursor < len(self._golden_schedule)
            else _NEVER
        )
        return min(self._next_capture, check)

    def _on_pause(self) -> bool:
        """Handle a scheduled pause at the current dynamic id.

        Returns ``True`` when the run should stop because it converged onto
        the golden execution.
        """
        if self._dyn == self._next_capture:
            tracing = self.sink is not None and getattr(self.sink, "wants_events", True)
            self.snapshots.append(
                Snapshot(
                    dyn=self._dyn,
                    frames=[_FrameImage(f) for f in self._frames],
                    memory=self.memory.capture_image(),
                    last_writer=dict(self._last_writer) if tracing else None,
                )
            )
            if (
                self.snapshot_budget is not None
                and len(self.snapshots) >= self.snapshot_budget
            ):
                # thin-by-doubling: drop every other snapshot and double the
                # interval; every retained position (even multiples of the
                # old interval) is a multiple of the new one
                del self.snapshots[1::2]
                self.snapshot_interval *= 2
                self._next_capture = self.snapshots[-1].dyn + self.snapshot_interval
            else:
                self._next_capture += self.snapshot_interval
        if (
            self._golden_schedule is not None
            and self._check_cursor < len(self._golden_schedule)
            and self._dyn == self._golden_schedule[self._check_cursor].dyn
        ):
            golden = self._golden_schedule[self._check_cursor]
            self._check_cursor += 1
            if golden.matches_live(self):
                self.converged = True
                return True
        return False

    # ------------------------------------------------------------------ #
    # the hot loop
    # ------------------------------------------------------------------ #
    def _loop(self) -> ExecutionResult:  # noqa: C901 - deliberately flat
        frames = self._frames
        memory = self.memory
        sink = self.sink
        tracing = sink is not None and getattr(sink, "wants_events", True)
        ticking = sink is not None and not tracing
        sink_append = sink.append if tracing else None
        sink_tick = sink.tick if ticking else None
        resolve = memory.resolve
        check_access = Memory._check_access_type
        last_writer = self._last_writer
        fault = self.fault
        fault_dyn = fault.dynamic_id if fault is not None else -1
        fault_operand = fault is not None and fault.target is FaultTarget.OPERAND
        fault_result = fault is not None and fault.target is FaultTarget.RESULT
        fault_store_old = fault is not None and fault.target is FaultTarget.STORE_DEST_OLD
        max_steps = self.max_steps
        max_depth = self.max_call_depth
        functions = self.program.functions
        module = self.module

        frame = frames[-1]
        ops = frame.df.ops
        regs = frame.regs
        prods = frame.prods
        pc = frame.pc
        dyn = self._dyn
        next_pause = self._next_pause()
        return_value: Optional[Number] = None

        try:
            while True:
                if dyn >= max_steps:
                    raise StepLimitExceeded(max_steps)
                if dyn == next_pause:
                    frame.pc = pc
                    self._dyn = dyn
                    if self._on_pause():
                        return ExecutionResult(
                            return_value=None, steps=dyn, trace=sink
                        )
                    next_pause = self._next_pause()

                op = ops[pc]
                kind = op.kind

                # ---------------------------------------------------- #
                # operand resolution
                # ---------------------------------------------------- #
                values: List[Number] = []
                for s, c in zip(op.src, op.consts):
                    if s >= 0:
                        v = regs[s]
                        if v is _UNDEF:
                            raise VMError(
                                f"use of value {op.src_names[len(values)]} "
                                f"before definition"
                            )
                        values.append(v)
                    else:
                        values.append(c)

                if dyn == fault_dyn and fault_operand:
                    index = fault.operand_index
                    if index >= len(values):
                        raise VMError(
                            f"fault operand index {index} out of range for "
                            f"{op.opcode.value} with {len(values)} operands"
                        )
                    values[index] = flip_bit(
                        values[index], fault.bit, op.op_types[index]
                    )

                # ---------------------------------------------------- #
                # execution
                # ---------------------------------------------------- #
                result: Optional[Number] = None
                address: Optional[int] = None
                object_name: Optional[str] = None
                element_index: Optional[int] = None
                writer_id = -1
                taken_label: Optional[str] = None
                next_pc = pc + 1

                if kind == K_FN:
                    result = op.fn(values)
                elif kind == K_LOAD:
                    address = int(values[0])
                    obj, element_index = resolve(address)
                    object_name = obj.name
                    check_access(obj, op.result_type, address)
                    result = obj.get(element_index)
                    if tracing:
                        writer_id = last_writer.get(address, -1)
                elif kind == K_STORE:
                    address = int(values[1])
                    obj, element_index = resolve(address)
                    object_name = obj.name
                    if dyn == fault_dyn and fault_store_old:
                        memory.flip_bit_at(address, fault.bit)
                    check_access(obj, op.op_types[0], address)
                    obj.set(element_index, values[0])
                    if tracing:
                        last_writer[address] = dyn
                elif kind == K_GEP:
                    result = int(values[0]) + int(values[1]) * op.gep_size
                elif kind == K_BR_COND:
                    if values[0]:
                        next_pc = op.pc_true
                        taken_label = op.label_true
                    else:
                        next_pc = op.pc_false
                        taken_label = op.label_false
                    frame.prev_block = op.block_index
                elif kind == K_BR:
                    next_pc = op.pc_true
                    taken_label = op.label_true
                    frame.prev_block = op.block_index
                elif kind == K_CALL_INTRINSIC:
                    result = op.fn(values)
                elif kind == K_RET:
                    result = values[0] if values else None
                elif kind == K_CALL_USER:
                    callee_df = functions.get(op.callee)
                    if callee_df is None:
                        raise UnknownIntrinsic(
                            f"call to unknown function {op.callee!r}"
                        )
                    if len(frames) >= max_depth:
                        raise VMError(
                            f"call depth limit ({max_depth}) exceeded"
                        )
                    if tracing:
                        sink_append(
                            TraceEvent(
                                dynamic_id=dyn,
                                opcode=Opcode.CALL,
                                function=op.function,
                                block=op.block_label,
                                static_uid=op.static_uid,
                                source_line=op.source_line,
                                operand_values=tuple(values),
                                operand_types=op.op_types,
                                operand_producers=tuple(
                                    prods[s] if s >= 0 else -1 for s in op.src
                                ),
                                operand_kinds=op.op_kinds,
                                result_value=None,
                                result_type=op.result_type if op.has_result else None,
                                predicate=None,
                                callee=op.callee,
                                address=None,
                                object_name=None,
                                element_index=None,
                                writer_id=-1,
                                taken_label=None,
                            )
                        )
                    elif ticking:
                        sink_tick(Opcode.CALL)
                    frame.pc = next_pc
                    callee_frame = _Frame(callee_df)
                    # mirror the interpreter's zip semantics on arity
                    # mismatch: surplus arguments are ignored, missing ones
                    # leave their slots undefined (raising on first use)
                    nargs = min(callee_df.nargs, len(values))
                    callee_frame.regs[:nargs] = values[:nargs]
                    if tracing:
                        callee_frame.prods[:nargs] = [
                            prods[s] if s >= 0 else -1 for s in op.src[:nargs]
                        ]
                    callee_frame.ret_slot = op.dest
                    callee_frame.ret_dyn = dyn
                    frames.append(callee_frame)
                    dyn += 1
                    frame = callee_frame
                    ops = callee_df.ops
                    regs = frame.regs
                    prods = frame.prods
                    pc = 0
                    continue
                elif kind == K_ALLOCA:
                    obj = memory.allocate_stack(
                        op.alloca_hint, op.alloca_type, op.alloca_count
                    )
                    frame.stack_objects.append(obj)
                    result = obj.base
                else:  # K_PHI
                    prev = frame.prev_block
                    if prev < 0:
                        raise VMError("phi executed in the entry block")
                    position = op.phi_by_block.get(prev)
                    if position is None:
                        raise VMError(
                            f"phi has no incoming value for predecessor "
                            f"{frame.df.block_labels[prev]}"
                        )
                    result = values[position]

                dest = op.dest
                if dest >= 0:
                    if dyn == fault_dyn and fault_result and kind != K_CALL_INTRINSIC:
                        result = flip_bit(result, fault.bit, op.result_type)
                    regs[dest] = result
                    if tracing:
                        prods[dest] = dyn

                if tracing:
                    sink_append(
                        TraceEvent(
                            dynamic_id=dyn,
                            opcode=op.opcode,
                            function=op.function,
                            block=op.block_label,
                            static_uid=op.static_uid,
                            source_line=op.source_line,
                            operand_values=tuple(values),
                            operand_types=op.op_types,
                            operand_producers=tuple(
                                prods[s] if s >= 0 else -1 for s in op.src
                            ),
                            operand_kinds=op.op_kinds,
                            result_value=result if op.has_result else None,
                            result_type=op.result_type if op.has_result else None,
                            predicate=op.predicate_str,
                            callee=op.callee,
                            address=address,
                            object_name=object_name,
                            element_index=element_index,
                            writer_id=writer_id,
                            taken_label=taken_label,
                        )
                    )
                elif ticking:
                    sink_tick(op.opcode)
                dyn += 1

                if kind == K_RET:
                    frames.pop()
                    for obj in frame.stack_objects:
                        memory.release(obj)
                    if not frames:
                        return_value = result
                        break
                    ret_slot = frame.ret_slot
                    ret_dyn = frame.ret_dyn
                    frame = frames[-1]
                    if ret_slot >= 0:
                        if result is None:
                            raise VMError(
                                f"call to {op.function} returned no value"
                            )
                        frame.regs[ret_slot] = result
                        if tracing:
                            frame.prods[ret_slot] = ret_dyn
                    ops = frame.df.ops
                    regs = frame.regs
                    prods = frame.prods
                    pc = frame.pc
                    continue

                pc = next_pc
        except BaseException:
            # release any stack allocations still owned by live frames so a
            # crashing run leaves memory as the recursive interpreter would
            while frames:
                dead = frames.pop()
                for obj in dead.stack_objects:
                    memory.release(obj)
            raise
        finally:
            self._dyn = dyn

        return ExecutionResult(return_value=return_value, steps=dyn, trace=sink)
