"""Pre-decoded execution engine with checkpointed snapshots.

The tree-walking :class:`~repro.vm.interpreter.Interpreter` re-derives the
same static facts on every dynamic step: operand classes (constant vs SSA
value vs argument) through ``isinstance`` chains, value environments through
per-frame dicts keyed by value uids, opcode dispatch through long chains of
enum comparisons, and trace metadata (block labels, operand types, operand
kinds) from the instruction objects.  For fault-injection campaigns — tens of
thousands of full executions of the same module — that per-step overhead
dominates.

This module lowers each :class:`~repro.ir.function.Function` *once* into a
flat array of :class:`DecodedOp` records:

* every operand is resolved at decode time to either a dense register-slot
  index or a literal constant, so the hot loop does a list index instead of a
  dict lookup plus ``isinstance`` checks;
* opcode families with pure semantics (arithmetic, comparisons, conversions,
  intrinsics) get a pre-bound evaluator (``op.fn``) so dispatch is one small
  integer compare;
* branch targets become program-counter indices and all trace-static fields
  (function name, block label, operand types/kinds, predicate) are attached
  to the op, so untraced runs never touch them.

On top of the decoded representation the engine supports **checkpointing**:
:class:`Snapshot` captures the complete dynamic state — the call stack with
its register files, the full memory image, and the dynamic-instruction
counter — and :meth:`Engine.resume` restores one and runs forward.  The
deterministic fault injectors in :mod:`repro.core` use this to replay only
the suffix of an execution after a fault site instead of re-running the
whole workload (see :mod:`repro.core.replay`).

Semantics are bit-identical to the interpreter: same dynamic-id numbering,
same fault hooks, same error types, and (when a full sink is attached) the
same :class:`~repro.tracing.events.TraceEvent` stream.
"""

from __future__ import annotations

import hashlib
import os
import struct
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.frontend.intrinsics import INTRINSICS
from repro.ir.function import Function, Module
from repro.ir.instructions import Instruction, Opcode
from repro.ir.values import Argument, Constant, UndefValue
from repro.obs.metrics import registry as _metrics_registry
from repro.tracing.events import OperandKind, TraceEvent
from repro.vm import semantics
from repro.vm.bits import flip_bit
from repro.vm.errors import StepLimitExceeded, UnknownIntrinsic, VMError
from repro.vm.faults import FaultSpec, FaultTarget
from repro.vm.interpreter import ExecutionResult, prepare_arguments
from repro.vm.memory import Memory, MemoryImage

Number = Union[int, float]


class _Undef:
    """Sentinel stored in register slots that have not been written yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<undef>"


_UNDEF = _Undef()

#: Sentinel for "no pause scheduled" in the engine loop.
_NEVER = 1 << 62

# Decoded opcode kinds (small ints; if/elif chain ordered by frequency).
K_FN = 0            # pure evaluator bound at decode time (arith/cmp/conv/...)
K_LOAD = 1
K_STORE = 2
K_GEP = 3
K_BR_COND = 4
K_BR = 5
K_CALL_INTRINSIC = 6
K_RET = 7
K_CALL_USER = 8
K_ALLOCA = 9
K_PHI = 10


class DecodedOp:
    """One pre-decoded instruction of a :class:`DecodedFunction`.

    ``src[i]`` is the register slot of operand *i*, or ``-1`` when the
    operand is a literal whose value sits in ``consts[i]``.
    """

    __slots__ = (
        "kind",
        "opcode",
        "dest",
        "src",
        "src_names",
        "consts",
        "fn",
        "result_type",
        "op_types",
        "op_kinds",
        "gep_size",
        "pc_true",
        "pc_false",
        "block_true",
        "block_false",
        "label_true",
        "label_false",
        "callee",
        "phi_by_block",
        "block_index",
        "function",
        "block_label",
        "static_uid",
        "source_line",
        "predicate_str",
        "has_result",
        "alloca_hint",
        "alloca_type",
        "alloca_count",
    )

    def __init__(self) -> None:
        self.fn = None
        self.gep_size = 0
        self.pc_true = -1
        self.pc_false = -1
        self.block_true = -1
        self.block_false = -1
        self.label_true = None
        self.label_false = None
        self.callee = None
        self.phi_by_block = None
        self.alloca_hint = ""
        self.alloca_type = None
        self.alloca_count = 1


class DecodedFunction:
    """A function lowered to a flat op array plus a dense register file."""

    __slots__ = ("name", "function", "ops", "nslots", "nargs", "block_labels")

    def __init__(self, function: Function) -> None:
        self.name = function.name
        self.function = function
        self.ops: List[DecodedOp] = []
        self.nargs = len(function.args)
        self.nslots = 0
        self.block_labels: List[str] = [b.label for b in function.blocks]


class DecodedProgram:
    """All functions of a module, decoded and cross-linked."""

    __slots__ = ("module", "functions")

    _CACHE_ATTR = "_decoded_program_cache"

    def __init__(self, module: Module) -> None:
        self.module = module
        # Callees stay names (resolved through ``functions`` at execution
        # time) so calls to unknown functions fault at runtime exactly like
        # the interpreter does.
        self.functions: Dict[str, DecodedFunction] = {
            func.name: _decode_function(func) for func in module
        }

    @classmethod
    def of(cls, module: Module) -> "DecodedProgram":
        """Decode ``module`` (cached on the module object)."""
        cached = getattr(module, cls._CACHE_ATTR, None)
        if cached is not None and cached.module is module:
            return cached
        program = cls(module)
        setattr(module, cls._CACHE_ATTR, program)
        return program

    @classmethod
    def invalidate(cls, module: Module) -> None:
        """Drop the decode cache (call after mutating the module's IR)."""
        if hasattr(module, cls._CACHE_ATTR):
            delattr(module, cls._CACHE_ATTR)
        # the lowered MIR is derived from the decode; keep them in sync
        from repro.mir.cache import invalidate as _invalidate_mir

        _invalidate_mir(module)


def _decode_function(func: Function) -> DecodedFunction:
    df = DecodedFunction(func)
    slots: Dict[int, int] = {}
    for arg in func.args:
        slots[arg.uid] = len(slots)
    for instr in func.instructions():
        if instr.has_result:
            slots[instr.uid] = len(slots)
    df.nslots = len(slots)

    block_index: Dict[int, int] = {id(b): i for i, b in enumerate(func.blocks)}
    block_pc: List[int] = []
    flat: List[Tuple[Instruction, int]] = []
    for bi, block in enumerate(func.blocks):
        block_pc.append(len(flat))
        if not block.is_terminated:
            raise VMError(
                f"block {block.label} in {func.name} fell through without "
                f"a terminator"
            )
        for instr in block.instructions:
            flat.append((instr, bi))

    for instr, bi in flat:
        df.ops.append(_decode_instruction(func, instr, bi, slots, block_index, block_pc))
    return df


def _operand_kind(operand) -> OperandKind:
    if isinstance(operand, (Constant, UndefValue)):
        return OperandKind.CONSTANT
    if isinstance(operand, Argument):
        return OperandKind.ARGUMENT
    return OperandKind.INSTRUCTION


def _decode_instruction(
    func: Function,
    instr: Instruction,
    bi: int,
    slots: Dict[int, int],
    block_index: Dict[int, int],
    block_pc: List[int],
) -> DecodedOp:
    op = DecodedOp()
    opcode = instr.opcode
    op.opcode = opcode
    op.block_index = bi
    op.function = func.name
    op.block_label = instr.parent.label if instr.parent else "?"
    op.static_uid = instr.uid
    op.source_line = instr.source_line
    op.result_type = instr.type
    op.has_result = instr.has_result
    op.dest = slots[instr.uid] if instr.has_result else -1
    op.predicate_str = instr.predicate.value if instr.predicate else None
    op.op_types = tuple(o.type for o in instr.operands)
    op.op_kinds = tuple(_operand_kind(o) for o in instr.operands)

    src: List[int] = []
    consts: List[Optional[Number]] = []
    for operand in instr.operands:
        if isinstance(operand, Constant):
            src.append(-1)
            consts.append(operand.value)
        elif isinstance(operand, UndefValue):
            src.append(-1)
            consts.append(0)
        else:
            src.append(slots[operand.uid])
            consts.append(None)
    op.src = tuple(src)
    op.src_names = tuple(operand.short() for operand in instr.operands)
    op.consts = tuple(consts)

    if opcode is Opcode.ALLOCA:
        op.kind = K_ALLOCA
        op.alloca_hint = instr.name or "tmp"
        op.alloca_type = instr.type.pointee  # type: ignore[union-attr]
        op.alloca_count = instr.alloca_count
    elif opcode is Opcode.LOAD:
        op.kind = K_LOAD
    elif opcode is Opcode.STORE:
        op.kind = K_STORE
    elif opcode is Opcode.GEP:
        op.kind = K_GEP
        op.gep_size = instr.operands[0].type.pointee.size_bytes  # type: ignore[union-attr]
    elif opcode is Opcode.BR:
        targets = instr.targets
        op.pc_true = block_pc[block_index[id(targets[0])]]
        op.block_true = block_index[id(targets[0])]
        op.label_true = targets[0].label
        if len(targets) == 1:
            op.kind = K_BR
        else:
            op.kind = K_BR_COND
            op.pc_false = block_pc[block_index[id(targets[1])]]
            op.block_false = block_index[id(targets[1])]
            op.label_false = targets[1].label
    elif opcode is Opcode.RET:
        op.kind = K_RET
    elif opcode is Opcode.CALL:
        callee = instr.callee or ""
        op.callee = callee
        if callee in INTRINSICS:
            op.kind = K_CALL_INTRINSIC
            info = INTRINSICS[callee]
            rtype = instr.type
            if rtype.is_integer:
                bits = rtype.bits
                evaluate = info.evaluate

                def _int_intrinsic(values, _eval=evaluate, _bits=bits):
                    try:
                        result = _eval(*values)
                    except (ValueError, OverflowError):
                        result = float("nan")
                    return semantics.to_signed(int(result), _bits)

                op.fn = _int_intrinsic
            else:
                evaluate = info.evaluate

                def _float_intrinsic(values, _eval=evaluate):
                    try:
                        return float(_eval(*values))
                    except (ValueError, OverflowError):
                        return float("nan")

                op.fn = _float_intrinsic
        else:
            op.kind = K_CALL_USER
    elif opcode is Opcode.PHI:
        op.kind = K_PHI
        op.phi_by_block = {
            block_index[id(block)]: position
            for position, block in enumerate(instr.incoming_blocks)
        }
    elif opcode is Opcode.SELECT:
        op.kind = K_FN
        op.fn = semantics.eval_select
    elif opcode is Opcode.ICMP:
        op.kind = K_FN
        predicate = instr.predicate
        operand_type = instr.operands[0].type

        def _icmp(values, _p=predicate, _t=operand_type):
            return semantics.eval_icmp(_p, _t, values)

        op.fn = _icmp
    elif opcode is Opcode.FCMP:
        op.kind = K_FN
        predicate = instr.predicate

        def _fcmp(values, _p=predicate):
            return semantics.eval_fcmp(_p, values)

        op.fn = _fcmp
    elif opcode is Opcode.FNEG:
        op.kind = K_FN
        op.fn = lambda values: -float(values[0])
    elif instr.is_binary:
        op.kind = K_FN
        rtype = instr.type

        def _binary(values, _op=opcode, _t=rtype):
            return semantics.eval_binary(_op, _t, values)

        op.fn = _binary
    else:
        op.kind = K_FN
        rtype = instr.type
        source_type = instr.operands[0].type

        def _conversion(values, _op=opcode, _s=source_type, _t=rtype):
            return semantics.eval_conversion(_op, _s, _t, values[0])

        op.fn = _conversion
    return op


class _Frame:
    """Per-call dynamic state of the decoded engine.

    ``div`` is only used by the lockstep batch walk
    (:meth:`Engine.resume_many`): a lazily created
    ``{slot: {fault_index: value}}`` map of register slots whose value
    differs from the golden execution for some in-flight faults.
    """

    __slots__ = ("df", "pc", "prev_block", "regs", "prods", "stack_objects",
                 "ret_slot", "ret_dyn", "div")

    def __init__(self, df: DecodedFunction) -> None:
        self.df = df
        self.pc = 0
        self.prev_block = -1
        self.regs: List[object] = [_UNDEF] * df.nslots
        self.prods: List[int] = [-1] * df.nslots
        self.stack_objects = []
        self.ret_slot = -1
        self.ret_dyn = -1
        self.div = None


class _FrameImage:
    """Immutable copy of a frame used inside :class:`Snapshot`."""

    __slots__ = ("func_name", "pc", "prev_block", "regs", "prods",
                 "stack_names", "ret_slot", "ret_dyn")

    def __init__(self, frame: _Frame) -> None:
        self.func_name = frame.df.name
        self.pc = frame.pc
        self.prev_block = frame.prev_block
        self.regs = list(frame.regs)
        self.prods = list(frame.prods)
        self.stack_names = [obj.name for obj in frame.stack_objects]
        self.ret_slot = frame.ret_slot
        self.ret_dyn = frame.ret_dyn


def _values_bit_equal(a: object, b: object) -> bool:
    """Bit-exact register comparison (``-0.0 != 0.0``, NaN payload matters)."""
    if a is b:
        return True
    ta, tb = type(a), type(b)
    if ta is not tb:
        return False
    if ta is float:
        return struct.pack("<d", a) == struct.pack("<d", b)
    return a == b


# --------------------------------------------------------------------- #
# state digests (convergence memoization)
# --------------------------------------------------------------------- #
_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


def _hash_values(h, values) -> None:
    """Feed a canonical, bit-exact encoding of register values into ``h``.

    Two value sequences produce the same bytes iff they are bit-identical
    under :func:`_values_bit_equal` (type tags keep ``1`` / ``1.0`` /
    ``True`` distinct; floats hash their IEEE-754 bytes so ``-0.0`` and NaN
    payloads are respected).
    """
    update = h.update
    for v in values:
        t = type(v)
        if t is float:
            update(b"f")
            update(struct.pack("<d", v))
        elif t is int:
            if _I64_MIN <= v <= _I64_MAX:
                update(b"i")
                update(struct.pack("<q", v))
            else:
                raw = repr(v).encode()
                update(b"I%d:" % len(raw))
                update(raw)
        elif t is bool:
            update(b"T" if v else b"F")
        elif v is _UNDEF:
            update(b"u")
        else:  # pragma: no cover - no other value types reach registers
            raw = repr(v).encode()
            update(b"O%d:" % len(raw))
            update(raw)


def _hash_frame(h, func_name, pc, prev_block, ret_slot, ret_dyn,
                stack_names, regs) -> None:
    raw = func_name.encode()
    h.update(b"\x01%d:" % len(raw))
    h.update(raw)
    h.update(struct.pack("<qqqq", pc, prev_block, ret_slot, ret_dyn))
    h.update(struct.pack("<q", len(stack_names)))
    for name in stack_names:
        raw = name.encode()
        h.update(b"%d:" % len(raw))
        h.update(raw)
    h.update(struct.pack("<q", len(regs)))
    _hash_values(h, regs)


def _hash_memory_object(h, name, element_type, count, base, is_stack, raw) -> None:
    encoded = name.encode()
    h.update(b"\x02%d:" % len(encoded))
    h.update(encoded)
    encoded = element_type.name.encode()
    h.update(b"%d:" % len(encoded))
    h.update(encoded)
    h.update(struct.pack("<qq?q", count, base, bool(is_stack), len(raw)))
    h.update(raw)


def snapshot_digest(snapshot: "Snapshot") -> bytes:
    """Content digest of a snapshot's complete dynamic state.

    Computed from exactly the state :meth:`Snapshot.matches_live` compares
    (producer links and the load-writer index are excluded), with the same
    canonical encoding :meth:`Engine.state_digest` uses for live state —
    so ``snapshot_digest(s) == engine.state_digest()`` iff the live state
    at ``s.dyn`` is bit-identical to the snapshot.
    """
    h = hashlib.blake2b(digest_size=16)
    frames = snapshot.frames
    h.update(struct.pack("<q", len(frames)))
    for image in frames:
        _hash_frame(h, image.func_name, image.pc, image.prev_block,
                    image.ret_slot, image.ret_dyn, image.stack_names,
                    image.regs)
    memory = snapshot.memory
    objects = sorted(memory.objects, key=lambda entry: entry[3])
    h.update(struct.pack("<qqq", memory.next_address, memory.stack_counter,
                         len(objects)))
    for name, element_type, count, base, is_stack, raw in objects:
        _hash_memory_object(h, name, element_type, count, base, is_stack, raw)
    return h.digest()


def default_backend() -> str:
    """The execution backend engines resolve when none is passed explicitly.

    Persisted artifacts that depend on execution order (the convergence
    memo) key on this, so a backend switch can never serve entries recorded
    under the other dispatch strategy.
    """
    return os.environ.get("REPRO_ENGINE_BACKEND") or "block"


class EngineFork:
    """A cheap, immutable fork of a live engine state.

    Captures the call stack as :class:`_FrameImage` copies (O(registers))
    and the address space as a copy-on-write :meth:`~repro.vm.memory.Memory.fork`
    (O(objects), bytes shared until written).  Forks are the divergence-window
    isolation primitive of the batched replay scheduler: the shared lockstep
    walk forks at eviction points and hands each divergent fault its own
    private, mutation-isolated state without copying memory up front.
    """

    __slots__ = ("dyn", "frames", "memory")

    def __init__(self, dyn: int, frames: List[_FrameImage], memory: Memory) -> None:
        self.dyn = dyn
        self.frames = frames
        self.memory = memory


class BatchFaultResolution:
    """How :meth:`Engine.resume_many` resolved one fault of a batch.

    ``kind`` is one of:

    ``"golden"``
        Proven bit-identical to the golden execution (``converged_at`` is
        the dynamic id of the proof point).
    ``"completed"``
        Survived the lockstep walk to program end with value-only
        divergence; ``cell_deltas`` lists ``(object, index, value)``
        memory cells that differ from golden, ``return_value``/``steps``
        are the faulty run's.
    ``"private"``
        Diverged in control flow or addressing and ran standalone from a
        copy-on-write fork; ``memory`` holds its final address space.
    ``"memo"``
        Answered by a convergence-memo entry (``memo_entry``).
    ``"error"``
        The faulty execution raised (``error``), either in lockstep value
        evaluation or in its private run.
    """

    __slots__ = ("spec", "kind", "return_value", "steps", "cell_deltas",
                 "memory", "error", "converged_at", "visited", "memo_entry",
                 "private")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.kind = ""
        self.return_value = None
        self.steps = 0
        self.cell_deltas: List[Tuple[str, int, object]] = []
        self.memory: Optional[Memory] = None
        self.error: Optional[BaseException] = None
        self.converged_at: Optional[int] = None
        self.visited: List[Tuple[int, bytes]] = []
        self.memo_entry = None
        self.private = False


class Snapshot:
    """Complete dynamic state of an :class:`Engine` at one dynamic id.

    Captures the call stack (register files, program counters, stack-object
    names), the full memory image and the dynamic-instruction counter.
    Snapshots are standalone: restoring one fully resets memory, including
    removing stack objects allocated after the capture point.
    """

    __slots__ = ("dyn", "frames", "memory", "last_writer")

    def __init__(
        self,
        dyn: int,
        frames: List[_FrameImage],
        memory: MemoryImage,
        last_writer: Optional[Dict[int, int]],
    ) -> None:
        self.dyn = dyn
        self.frames = frames
        self.memory = memory
        self.last_writer = last_writer

    def matches_live(self, engine: "Engine") -> bool:
        """Whether the engine's live state is bit-identical to this snapshot.

        Used by checkpointed replay to detect that a faulty execution has
        converged back onto the golden execution: from a matching state the
        remainder of the run is deterministic and therefore identical.
        Producer links and the load-writer index are excluded — they are
        trace metadata with no influence on future computation.
        """
        if engine._dyn != self.dyn:
            return False
        frames = engine._frames
        if len(frames) != len(self.frames):
            return False
        for live, image in zip(frames, self.frames):
            if (
                live.df.name != image.func_name
                or live.pc != image.pc
                or live.prev_block != image.prev_block
                or live.ret_slot != image.ret_slot
                or live.ret_dyn != image.ret_dyn
            ):
                return False
            if [obj.name for obj in live.stack_objects] != image.stack_names:
                return False
            regs = live.regs
            if len(regs) != len(image.regs):
                return False
            for a, b in zip(regs, image.regs):
                if not _values_bit_equal(a, b):
                    return False
        return engine.memory.matches_image(self.memory)


class Engine:
    """Execute pre-decoded IR over a :class:`Memory`.

    Drop-in executor with the same contract as
    :class:`~repro.vm.interpreter.Interpreter` (``run`` →
    :class:`ExecutionResult`, same error types, same fault hooks, same
    dynamic-id numbering) plus:

    * ``sink`` — any :class:`~repro.tracing.sinks.TraceSink`; sinks with
      ``wants_events = False`` skip event construction entirely;
    * ``snapshot_interval`` — capture a :class:`Snapshot` every N dynamic
      instructions (position 0 included) into :attr:`snapshots`;
    * ``snapshot_budget`` — cap the snapshot count without knowing the run
      length in advance: when the schedule fills up, every other snapshot
      is dropped and the interval doubles (all retained positions stay
      multiples of the final interval);
    * :meth:`resume` — restore a snapshot and run to completion, optionally
      detecting convergence against a golden snapshot schedule.
    """

    def __init__(
        self,
        module: Module,
        memory: Memory,
        sink=None,
        fault: Optional[FaultSpec] = None,
        max_steps: int = 5_000_000,
        max_call_depth: int = 200,
        snapshot_interval: int = 0,
        snapshot_budget: Optional[int] = None,
        program: Optional[DecodedProgram] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.module = module
        self.memory = memory
        self.sink = sink
        self.fault = fault
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        self.program = program if program is not None else DecodedProgram.of(module)
        # Execution backend: "block" (default) dispatches fused MIR
        # superinstructions where legal and falls back to the op loop;
        # "op" forces the plain per-op loop (the bit-identity oracle).
        # ``REPRO_ENGINE_BACKEND`` overrides the default process-wide.
        if backend is None:
            backend = default_backend()
        if backend not in ("block", "op"):
            raise ValueError(
                f"unknown engine backend {backend!r} (expected 'block' or 'op')"
            )
        self.backend = backend
        if backend == "block":
            from repro.mir import mir_program_for  # deferred: mir builds on us

            self._mir = mir_program_for(self.program)
        else:
            self._mir = None
        self.snapshot_interval = snapshot_interval
        self.snapshot_budget = snapshot_budget
        self.snapshots: List[Snapshot] = []
        self.converged = False
        #: Dynamic id at which convergence onto golden was proven (or None).
        self.converged_at: Optional[int] = None
        #: Memo entry that answered this run early (digest-check path).
        self.memo_entry = None
        #: True when :meth:`run_to` stopped at its target instead of at a
        #: program exit.
        self.paused = False
        self._dyn = 0
        self._frames: List[_Frame] = []
        self._last_writer: Dict[int, int] = {}
        self._next_capture = 0 if snapshot_interval else _NEVER
        self._golden_schedule: Optional[Sequence[Snapshot]] = None
        self._check_cursor = 0
        self._stop_at = _NEVER
        #: Digest-check state (batched replay): sorted positions, golden
        #: digests keyed by position, an optional convergence memo, and the
        #: (position, digest) pairs visited without a hit.
        self._digest_positions: Optional[List[int]] = None
        self._digest_cursor = 0
        self._golden_digests: Dict[int, bytes] = {}
        self._memo = None
        self.visited: List[Tuple[int, bytes]] = []

    # ------------------------------------------------------------------ #
    # public entry points
    # ------------------------------------------------------------------ #
    @property
    def steps_executed(self) -> int:
        return self._dyn

    def run(
        self,
        function_name: str,
        args: Union[Dict[str, object], Sequence[object]],
    ) -> ExecutionResult:
        """Execute ``function_name`` with ``args`` (same contract as the
        interpreter's ``run``)."""
        func = self.module.get_function(function_name)
        values = prepare_arguments(func, args)
        df = self.program.functions[function_name]
        if len(self._frames) >= self.max_call_depth:
            raise VMError(f"call depth limit ({self.max_call_depth}) exceeded")
        frame = _Frame(df)
        frame.regs[: df.nargs] = values
        self._frames.append(frame)
        return self._loop()

    def _restore_frames(self, images: Sequence[_FrameImage]) -> None:
        self._frames = []
        for image in images:
            df = self.program.functions[image.func_name]
            frame = _Frame(df)
            frame.pc = image.pc
            frame.prev_block = image.prev_block
            frame.regs = list(image.regs)
            frame.prods = list(image.prods)
            frame.stack_objects = [self.memory.object(n) for n in image.stack_names]
            frame.ret_slot = image.ret_slot
            frame.ret_dyn = image.ret_dyn
            self._frames.append(frame)

    def _reset_run_flags(self) -> None:
        self.converged = False
        self.converged_at = None
        self.memo_entry = None
        self.paused = False
        self._stop_at = _NEVER
        self._golden_schedule = None
        self._check_cursor = 0
        self._digest_positions = None
        self._digest_cursor = 0
        self._golden_digests = {}
        self._memo = None
        self.visited = []

    def prepare_resume(self, snapshot: Snapshot) -> None:
        """Restore ``snapshot`` as the live state without running.

        Together with :meth:`run_to` and :meth:`capture_fork` this forms a
        reusable *resume cursor*: restore once, walk the golden suffix
        pausing at chosen dynamic ids, and fork the paused state cheaply —
        the amortized-snapshot primitive of the batched replay scheduler.
        """
        self.memory.restore_image(snapshot.memory)
        self._restore_frames(snapshot.frames)
        self._dyn = snapshot.dyn
        self._last_writer = dict(snapshot.last_writer or {})
        self._reset_run_flags()
        reg = _metrics_registry()
        if reg.enabled:
            reg.inc("engine.snapshot_restores", backend=self.backend)
        # re-align snapshot capture to the first interval multiple strictly
        # after the restore point (the restore point itself is the snapshot
        # the caller already holds)
        if self.snapshot_interval:
            interval = self.snapshot_interval
            self._next_capture = (snapshot.dyn // interval + 1) * interval
        else:
            self._next_capture = _NEVER

    def resume(
        self,
        snapshot: Snapshot,
        golden_schedule: Optional[Sequence[Snapshot]] = None,
    ) -> ExecutionResult:
        """Restore ``snapshot`` and run forward to completion.

        When ``golden_schedule`` (the snapshot list of the fault-free run) is
        given and a fault is armed, the engine compares its state against the
        next golden snapshot after the fault site at every checkpoint
        position; on a bit-identical match it stops early with
        :attr:`converged` set — the remainder of the execution provably
        equals the golden run.
        """
        self.prepare_resume(snapshot)
        if golden_schedule and self.fault is not None:
            # first golden position strictly after the fault site (the fault
            # must have fired before a comparison can prove convergence)
            positions = [s.dyn for s in golden_schedule]
            cursor = 0
            while cursor < len(positions) and (
                positions[cursor] <= self.fault.dynamic_id
                or positions[cursor] <= snapshot.dyn
            ):
                cursor += 1
            if cursor < len(positions):
                self._golden_schedule = golden_schedule
                self._check_cursor = cursor
        return self._loop()

    # ------------------------------------------------------------------ #
    # resume cursor + forks (batched replay building blocks)
    # ------------------------------------------------------------------ #
    def run_to(self, target: int) -> None:
        """Advance the live state to dynamic id ``target`` and pause there.

        ``target`` must be at or ahead of the current position; pausing at
        the current position is a no-op.  Raises :class:`VMError` when the
        program returns before reaching ``target``.
        """
        if target < self._dyn:
            raise ValueError(
                f"cannot run backwards: at {self._dyn}, target {target}"
            )
        if target == self._dyn:
            return
        self._stop_at = target
        self.paused = False
        try:
            self._loop()
        finally:
            self._stop_at = _NEVER
        if not self.paused:
            raise VMError(
                f"execution finished at dynamic id {self._dyn} before "
                f"reaching {target}"
            )

    def capture_fork(self) -> EngineFork:
        """A copy-on-write fork of the live state (frames + memory)."""
        reg = _metrics_registry()
        if reg.enabled:
            reg.inc("engine.forks", backend=self.backend)
        return EngineFork(
            self._dyn,
            [_FrameImage(frame) for frame in self._frames],
            self.memory.fork(),
        )

    def adopt_fork(self, fork: EngineFork) -> None:
        """Make a fresh copy-on-write clone of ``fork`` the live state.

        Each adoption re-forks the fork's memory, so the fork itself stays
        pristine and can seed any number of divergent replays.
        """
        self.memory = fork.memory.fork()
        self._restore_frames(fork.frames)
        self._dyn = fork.dyn
        self._last_writer = {}
        self._reset_run_flags()
        self._next_capture = _NEVER
        reg = _metrics_registry()
        if reg.enabled:
            reg.inc("engine.fork_adoptions", backend=self.backend)

    def run_checked(
        self,
        positions: Sequence[int],
        golden_digests: Dict[int, bytes],
        memo=None,
    ) -> ExecutionResult:
        """Run to completion with digest checks at ``positions``.

        At each position the live :meth:`state_digest` is compared against
        the golden digest (bit-identical match ⇒ :attr:`converged`) and, on
        a mismatch, looked up in ``memo`` (an object with
        ``lookup(position, digest)``); a memo hit stops the run with
        :attr:`memo_entry` set.  Misses are accumulated in :attr:`visited`
        so the caller can memoize this run's outcome under every state it
        passed through.
        """
        self._digest_positions = list(positions)
        self._digest_cursor = 0
        self._golden_digests = golden_digests
        self._memo = memo
        self.visited = []
        return self._loop()

    def state_digest(self) -> bytes:
        """Content digest of the live dynamic state (see :func:`snapshot_digest`)."""
        h = hashlib.blake2b(digest_size=16)
        frames = self._frames
        h.update(struct.pack("<q", len(frames)))
        for frame in frames:
            _hash_frame(
                h, frame.df.name, frame.pc, frame.prev_block, frame.ret_slot,
                frame.ret_dyn, [obj.name for obj in frame.stack_objects],
                frame.regs,
            )
        memory = self.memory
        h.update(struct.pack(
            "<qqq", memory._next_address, memory._stack_counter,
            len(memory._by_base),
        ))
        for obj in memory._by_base:
            _hash_memory_object(
                h, obj.name, obj.element_type, obj.count, obj.base,
                obj.is_stack, obj.array.tobytes(),
            )
        return h.digest()

    # ------------------------------------------------------------------ #
    # batched replay: lockstep walk with per-fault divergence state
    # ------------------------------------------------------------------ #
    def _private_replay(
        self,
        resolution: BatchFaultResolution,
        fork: EngineFork,
        fault: Optional[FaultSpec],
        reg_patches,
        cell_patches,
        sched_positions: List[int],
        golden_digests: Optional[Dict[int, bytes]],
        memo,
    ) -> BatchFaultResolution:
        """Run one fault privately from a copy-on-write fork.

        Used by :meth:`resume_many` for faults the lockstep walk cannot
        carry: either the fault is armed on the fork (``fault`` set, birth
        eviction) or its accumulated divergence is patched onto the fork's
        clone (``reg_patches``/``cell_patches``, mid-walk eviction after a
        control-flow or addressing divergence).
        """
        engine = Engine(
            self.module,
            fork.memory,
            fault=fault,
            max_steps=self.max_steps,
            max_call_depth=self.max_call_depth,
            program=self.program,
            backend=self.backend,
        )
        engine.adopt_fork(fork)
        for frame_index, slot, value in reg_patches:
            engine._frames[frame_index].regs[slot] = value
        for name, index, value in cell_patches:
            engine.memory.object(name).set(index, value)
        if golden_digests is not None:
            start = bisect_right(sched_positions, fork.dyn)
            positions = sched_positions[start:]
        else:
            positions = ()
        resolution.private = True
        try:
            result = engine.run_checked(positions, golden_digests or {}, memo)
        except Exception as exc:
            resolution.kind = "error"
            resolution.error = exc
        else:
            if engine.converged:
                resolution.kind = "golden"
                resolution.converged_at = engine.converged_at
            elif engine.memo_entry is not None:
                resolution.kind = "memo"
                resolution.memo_entry = engine.memo_entry
            else:
                resolution.kind = "private"
                resolution.memory = engine.memory
                resolution.return_value = result.return_value
                resolution.steps = result.steps
        resolution.visited = engine.visited
        return resolution

    def resume_many(  # noqa: C901 - one deliberately flat dispatch loop
        self,
        schedule: Sequence[Snapshot],
        specs: Sequence[FaultSpec],
        golden_digests: Optional[Dict[int, bytes]] = None,
        memo=None,
    ) -> List[BatchFaultResolution]:
        """Resolve a batch of faults through one shared golden suffix walk.

        ``specs`` must be sorted by ``dynamic_id``.  The engine restores the
        snapshot nearest the earliest fault **once**, then re-executes the
        golden suffix a single time; faults arm as the walk reaches their
        site and ride along as sparse *divergence state* (register slots and
        memory cells whose value differs from golden, per fault):

        * value divergence is evaluated per fault on the side, reusing the
          walk's decoded ops and operand resolution;
        * a fault whose divergence set drains to empty is provably
          bit-identical to golden and resolves immediately;
        * a fault that diverges in control flow or addressing is *evicted*
          into a private replay seeded from a copy-on-write fork of the
          walk's state patched with the fault's divergence — private runs
          use digest checks against ``golden_digests`` (convergence) and
          ``memo`` (outcome memoization at matching intermediate states);
        * faults still diverged when the program returns resolve to the
          golden outcome patched with their cell deltas.

        Outcomes are bit-identical to per-fault sequential replay (asserted
        across all registered workloads by ``tests/test_replay_batch.py``).
        """
        specs = list(specs)
        if not specs:
            return []
        for earlier, later in zip(specs, specs[1:]):
            if later.dynamic_id < earlier.dynamic_id:
                raise ValueError("resume_many specs must be sorted by dynamic_id")
        sched_positions = [snap.dyn for snap in schedule]
        start_index = bisect_right(sched_positions, specs[0].dynamic_id) - 1
        if start_index < 0:
            raise ValueError(
                f"no snapshot at or before dynamic id {specs[0].dynamic_id}"
            )
        self.fault = None  # the walk itself is fault-free
        self.prepare_resume(schedule[start_index])

        resolutions = [BatchFaultResolution(spec) for spec in specs]
        nspecs = len(specs)
        next_spec = 0
        next_arm = specs[0].dynamic_id
        #: fault index -> armed spec, for faults riding the lockstep walk
        active: Dict[int, FaultSpec] = {}
        #: fault index -> diverged registers + cells (resolves golden at 0)
        div_count: Dict[int, int] = {}
        #: object name -> element index -> fault index -> diverged value
        cells: Dict[str, Dict[int, Dict[int, object]]] = {}

        frames = self._frames
        memory = self.memory
        resolve = memory.resolve
        check_access = Memory._check_access_type
        max_steps = self.max_steps
        max_depth = self.max_call_depth
        functions = self.program.functions

        frame = frames[-1]
        ops = frame.df.ops
        regs = frame.regs
        pc = frame.pc
        dyn = self._dyn

        # ---- helpers over the divergence bookkeeping ------------------- #
        op = None
        values: List[Number] = []

        def fault_operands(fid, armed):
            """The fault's view of the current op's operand values."""
            vals = list(values)
            fdiv_local = frame.div
            if fdiv_local:
                for position, slot in enumerate(op.src):
                    if slot >= 0:
                        m = fdiv_local.get(slot)
                        if m is not None and fid in m:
                            vals[position] = m[fid]
            if armed is not None:
                index = armed.operand_index
                vals[index] = flip_bit(vals[index], armed.bit, op.op_types[index])
            return vals

        def collect_patches(fid):
            reg_patches = []
            for frame_index, fr in enumerate(frames):
                fdiv_local = fr.div
                if fdiv_local:
                    for slot, m in fdiv_local.items():
                        if fid in m:
                            reg_patches.append((frame_index, slot, m[fid]))
            cell_patches = []
            for name, cmap in cells.items():
                for index, m in cmap.items():
                    if fid in m:
                        cell_patches.append((name, index, m[fid]))
            return reg_patches, cell_patches

        def drop_fault(fid):
            for fr in frames:
                fdiv_local = fr.div
                if fdiv_local:
                    for slot in [s for s, m in fdiv_local.items() if fid in m]:
                        m = fdiv_local[slot]
                        del m[fid]
                        if not m:
                            del fdiv_local[slot]
            for name in list(cells):
                cmap = cells[name]
                for index in [i for i, m in cmap.items() if fid in m]:
                    m = cmap[index]
                    del m[fid]
                    if not m:
                        del cmap[index]
                if not cmap:
                    del cells[name]
            div_count.pop(fid, None)
            active.pop(fid, None)

        def resolve_golden(fid, at):
            resolution = resolutions[fid]
            resolution.kind = "golden"
            resolution.converged_at = at
            active.pop(fid, None)
            div_count.pop(fid, None)

        def resolve_error(fid, exc):
            resolution = resolutions[fid]
            resolution.kind = "error"
            resolution.error = exc
            drop_fault(fid)

        #: Faults whose last diverged register/cell died this op (the op's
        #: tail resolves them golden and clears the list).
        drained: List[int] = []

        def dec_divergence(fid):
            c = div_count.get(fid)
            if c is not None:
                div_count[fid] = c - 1
                if c == 1:
                    drained.append(fid)

        # ---- the walk -------------------------------------------------- #
        try:
            while True:
                if dyn >= max_steps:
                    raise StepLimitExceeded(max_steps)
                op = ops[pc]
                kind = op.kind
                op_dyn = dyn

                # ------- operand resolution (golden values) ------- #
                values = []
                for s, c in zip(op.src, op.consts):
                    if s >= 0:
                        v = regs[s]
                        if v is _UNDEF:
                            raise VMError(
                                f"use of value {op.src_names[len(values)]} "
                                f"before definition"
                            )
                        values.append(v)
                    else:
                        values.append(c)

                fdiv = frame.div
                workers = None          # fid -> armed spec (or None)
                birth_store_old = None  # STORE_DEST_OLD faults firing here
                born = None             # fids armed into lockstep this op
                fork = None

                # ------- faults arming at this op ------- #
                if dyn == next_arm:
                    while (
                        next_spec < nspecs
                        and specs[next_spec].dynamic_id == dyn
                    ):
                        fid = next_spec
                        spec = specs[fid]
                        next_spec += 1
                        target = spec.target
                        if target is FaultTarget.STORE_DEST_OLD and kind == K_STORE:
                            if birth_store_old is None:
                                birth_store_old = []
                            birth_store_old.append(fid)
                        elif (
                            target is FaultTarget.OPERAND
                            and 0 <= spec.operand_index < len(values)
                            and (
                                kind == K_FN
                                or kind == K_CALL_INTRINSIC
                                or kind == K_GEP
                                or kind == K_PHI
                                or kind == K_RET
                                or kind == K_CALL_USER
                                or (kind == K_STORE and spec.operand_index == 0)
                            )
                        ):
                            # a pure value-level flip: ride the lockstep walk
                            active[fid] = spec
                            if workers is None:
                                workers = {}
                            workers[fid] = spec
                            if born is None:
                                born = []
                            born.append(fid)
                        else:
                            # exotic site (result target, address operand,
                            # branch condition, out-of-range operand index):
                            # reproduce exactly via a private replay with the
                            # fault armed on a fork of the pre-op state
                            if fork is None:
                                frame.pc = pc
                                self._dyn = dyn
                                fork = self.capture_fork()
                            self._private_replay(
                                resolutions[fid], fork, spec, (), (),
                                sched_positions, golden_digests, memo,
                            )
                    next_arm = (
                        specs[next_spec].dynamic_id
                        if next_spec < nspecs
                        else -1
                    )

                # ------- divergence reaching this op's operands ------- #
                aff = None
                if fdiv:
                    for s in op.src:
                        if s >= 0:
                            m = fdiv.get(s)
                            if m:
                                if aff is None:
                                    aff = set(m)
                                else:
                                    aff.update(m)

                # ------- control-flow / addressing divergence: evict ---- #
                if aff:
                    evictees = None
                    if kind == K_LOAD:
                        evictees = aff  # the only operand is the address
                        aff = None
                    elif kind == K_STORE:
                        s = op.src[1]
                        m = fdiv.get(s) if s >= 0 else None
                        if m:
                            evictees = set(m)
                            aff = aff - evictees
                            if not aff:
                                aff = None
                    elif kind == K_BR_COND:
                        cond_map = fdiv.get(op.src[0]) if op.src[0] >= 0 else None
                        if cond_map:
                            evictees = {
                                fid
                                for fid, v in cond_map.items()
                                if bool(v) != bool(values[0])
                            } or None
                        aff = None  # same-direction divergence has no value effect
                    if evictees:
                        if fork is None:
                            frame.pc = pc
                            self._dyn = dyn
                            fork = self.capture_fork()
                        for fid in sorted(evictees):
                            reg_patches, cell_patches = collect_patches(fid)
                            drop_fault(fid)
                            self._private_replay(
                                resolutions[fid], fork, None, reg_patches,
                                cell_patches, sched_positions, golden_digests,
                                memo,
                            )
                if aff:
                    if workers is None:
                        workers = dict.fromkeys(aff)
                    else:
                        for fid in aff:
                            workers.setdefault(fid)

                # ------- golden execution + divergence updates ------- #
                result: Optional[Number] = None
                next_pc = pc + 1
                load_fmap = None
                phi_position = -1

                if kind == K_FN or kind == K_CALL_INTRINSIC:
                    result = op.fn(values)
                elif kind == K_LOAD:
                    address = int(values[0])
                    obj, element_index = resolve(address)
                    check_access(obj, op.result_type, address)
                    result = obj.get(element_index)
                    cmap = cells.get(obj.name)
                    if cmap is not None:
                        load_fmap = cmap.get(element_index)
                        if load_fmap:
                            # readers of diverged cells diverge in the dest
                            if workers is None:
                                workers = {}
                            for fid in load_fmap:
                                workers.setdefault(fid)
                elif kind == K_STORE:
                    address = int(values[1])
                    obj, element_index = resolve(address)
                    check_access(obj, op.op_types[0], address)
                    obj.set(element_index, values[0])
                    cmap = cells.get(obj.name)
                    had_old = cmap is not None and element_index in cmap
                    if workers or had_old or birth_store_old:
                        golden_stored = obj.get(element_index)
                        new = None
                        errored = None
                        if workers:
                            new = {}
                            for fid, armed in workers.items():
                                try:
                                    vals = fault_operands(fid, armed)
                                    cast = obj.cast_value(vals[0])
                                except Exception as exc:
                                    if errored is None:
                                        errored = []
                                    errored.append((fid, exc))
                                    continue
                                if not _values_bit_equal(cast, golden_stored):
                                    new[fid] = cast
                        old = cmap.pop(element_index, None) if cmap else None
                        if errored:
                            for fid, exc in errored:
                                resolve_error(fid, exc)
                                if new:
                                    new.pop(fid, None)
                        if old:
                            for fid in old:
                                if new is None or fid not in new:
                                    dec_divergence(fid)
                        if new:
                            for fid in new:
                                if old is None or fid not in old:
                                    div_count[fid] = div_count.get(fid, 0) + 1
                            cells.setdefault(obj.name, {})[element_index] = new
                        if birth_store_old:
                            # the flipped old value is overwritten by this
                            # very store: provably golden from here on
                            for fid in birth_store_old:
                                resolve_golden(fid, op_dyn)
                elif kind == K_GEP:
                    result = int(values[0]) + int(values[1]) * op.gep_size
                elif kind == K_BR_COND:
                    if values[0]:
                        next_pc = op.pc_true
                    else:
                        next_pc = op.pc_false
                    frame.prev_block = op.block_index
                elif kind == K_BR:
                    next_pc = op.pc_true
                    frame.prev_block = op.block_index
                elif kind == K_RET:
                    result = values[0] if values else None
                    ret_divs = None
                    if workers:
                        errored = None
                        ret_divs = {}
                        for fid, armed in workers.items():
                            try:
                                vals = fault_operands(fid, armed)
                            except Exception as exc:
                                if errored is None:
                                    errored = []
                                errored.append((fid, exc))
                                continue
                            ret_divs[fid] = vals[0] if vals else None
                        if errored:
                            for fid, exc in errored:
                                resolve_error(fid, exc)
                    popped = frames.pop()
                    pdiv = popped.div
                    if pdiv:
                        for m in pdiv.values():
                            for fid in m:
                                dec_divergence(fid)
                        popped.div = None
                    for stack_obj in popped.stack_objects:
                        memory.release(stack_obj)
                        cmap = cells.pop(stack_obj.name, None)
                        if cmap:
                            for m in cmap.values():
                                for fid in m:
                                    dec_divergence(fid)
                    dyn += 1
                    if not frames:
                        # entry return: survivors resolve to golden patched
                        # with their cell deltas
                        for fid in list(active):
                            resolution = resolutions[fid]
                            resolution.kind = "completed"
                            rv = result
                            if ret_divs and fid in ret_divs:
                                rv = ret_divs[fid]
                            resolution.return_value = rv
                            resolution.steps = dyn
                            deltas = []
                            for name, cmap in cells.items():
                                for index, m in cmap.items():
                                    if fid in m:
                                        deltas.append((name, index, m[fid]))
                            resolution.cell_deltas = deltas
                        active.clear()
                        break
                    ret_slot = popped.ret_slot
                    frame = frames[-1]
                    if ret_slot >= 0:
                        if result is None:
                            raise VMError(
                                f"call to {op.function} returned no value"
                            )
                        frame.regs[ret_slot] = result
                        cdiv = frame.div
                        old = cdiv.pop(ret_slot, None) if cdiv else None
                        new = None
                        if ret_divs:
                            new = {
                                fid: v
                                for fid, v in ret_divs.items()
                                if fid in active
                                and not _values_bit_equal(v, result)
                            }
                        if old:
                            for fid in old:
                                if new is None or fid not in new:
                                    dec_divergence(fid)
                        if new:
                            for fid in new:
                                if old is None or fid not in old:
                                    div_count[fid] = div_count.get(fid, 0) + 1
                            if cdiv is None:
                                cdiv = frame.div = {}
                            cdiv[ret_slot] = new
                    ops = frame.df.ops
                    regs = frame.regs
                    pc = frame.pc
                    if drained:
                        for fid in drained:
                            if fid in active and div_count.get(fid, 0) == 0:
                                resolve_golden(fid, op_dyn)
                        drained.clear()
                    if born:
                        for fid in born:
                            if fid in active and div_count.get(fid, 0) == 0:
                                resolve_golden(fid, op_dyn)
                    if not active and next_spec >= nspecs:
                        break
                    continue
                elif kind == K_CALL_USER:
                    callee_df = functions.get(op.callee)
                    if callee_df is None:
                        raise UnknownIntrinsic(
                            f"call to unknown function {op.callee!r}"
                        )
                    if len(frames) >= max_depth:
                        raise VMError(
                            f"call depth limit ({max_depth}) exceeded"
                        )
                    frame.pc = next_pc
                    callee_frame = _Frame(callee_df)
                    nargs = min(callee_df.nargs, len(values))
                    callee_frame.regs[:nargs] = values[:nargs]
                    callee_frame.ret_slot = op.dest
                    callee_frame.ret_dyn = dyn
                    if workers:
                        cdiv = None
                        for fid, armed in workers.items():
                            try:
                                vals = fault_operands(fid, armed)
                            except Exception as exc:
                                resolve_error(fid, exc)
                                continue
                            for position in range(nargs):
                                if not _values_bit_equal(
                                    vals[position], values[position]
                                ):
                                    if cdiv is None:
                                        cdiv = {}
                                    cdiv.setdefault(position, {})[fid] = vals[position]
                                    div_count[fid] = div_count.get(fid, 0) + 1
                        if cdiv:
                            callee_frame.div = cdiv
                    frames.append(callee_frame)
                    dyn += 1
                    frame = callee_frame
                    ops = callee_df.ops
                    regs = frame.regs
                    pc = 0
                    if born:
                        for fid in born:
                            if fid in active and div_count.get(fid, 0) == 0:
                                resolve_golden(fid, op_dyn)
                    if not active and next_spec >= nspecs:
                        break
                    continue
                elif kind == K_ALLOCA:
                    obj = memory.allocate_stack(
                        op.alloca_hint, op.alloca_type, op.alloca_count
                    )
                    frame.stack_objects.append(obj)
                    result = obj.base
                else:  # K_PHI
                    prev = frame.prev_block
                    if prev < 0:
                        raise VMError("phi executed in the entry block")
                    phi_position = op.phi_by_block.get(prev, -1)
                    if phi_position < 0:
                        raise VMError(
                            f"phi has no incoming value for predecessor "
                            f"{frame.df.block_labels[prev]}"
                        )
                    result = values[phi_position]

                # ------- generic dest write + divergence rebuild ------- #
                dest = op.dest
                if dest >= 0:
                    new = None
                    errored = None
                    if workers:
                        new = {}
                        for fid, armed in workers.items():
                            try:
                                if kind == K_LOAD:
                                    r_f = (
                                        load_fmap[fid]
                                        if load_fmap and fid in load_fmap
                                        else result
                                    )
                                elif kind == K_GEP:
                                    vals = fault_operands(fid, armed)
                                    r_f = (
                                        int(vals[0])
                                        + int(vals[1]) * op.gep_size
                                    )
                                elif kind == K_PHI:
                                    vals = fault_operands(fid, armed)
                                    r_f = vals[phi_position]
                                else:  # K_FN / K_CALL_INTRINSIC
                                    vals = fault_operands(fid, armed)
                                    r_f = op.fn(vals)
                            except Exception as exc:
                                if errored is None:
                                    errored = []
                                errored.append((fid, exc))
                                continue
                            if not _values_bit_equal(r_f, result):
                                new[fid] = r_f
                    regs[dest] = result
                    if fdiv is not None or new:
                        old = fdiv.pop(dest, None) if fdiv else None
                        if errored:
                            for fid, exc in errored:
                                resolve_error(fid, exc)
                                if new:
                                    new.pop(fid, None)
                        if old:
                            for fid in old:
                                if new is None or fid not in new:
                                    dec_divergence(fid)
                        if new:
                            for fid in new:
                                if old is None or fid not in old:
                                    div_count[fid] = div_count.get(fid, 0) + 1
                            if fdiv is None:
                                fdiv = frame.div = {}
                            fdiv[dest] = new
                    elif errored:
                        for fid, exc in errored:
                            resolve_error(fid, exc)

                dyn += 1
                if drained:
                    for fid in drained:
                        if fid in active and div_count.get(fid, 0) == 0:
                            resolve_golden(fid, op_dyn)
                    drained.clear()
                if born:
                    for fid in born:
                        if fid in active and div_count.get(fid, 0) == 0:
                            resolve_golden(fid, op_dyn)
                if not active and next_spec >= nspecs:
                    break
                pc = next_pc
        except BaseException:
            while frames:
                dead = frames.pop()
                for stack_obj in dead.stack_objects:
                    memory.release(stack_obj)
            raise
        finally:
            self._dyn = dyn

        return resolutions

    # ------------------------------------------------------------------ #
    # pause handling (snapshot capture / convergence checks)
    # ------------------------------------------------------------------ #
    def _next_pause(self) -> int:
        nxt = self._next_capture
        if (
            self._golden_schedule is not None
            and self._check_cursor < len(self._golden_schedule)
        ):
            check = self._golden_schedule[self._check_cursor].dyn
            if check < nxt:
                nxt = check
        if (
            self._digest_positions is not None
            and self._digest_cursor < len(self._digest_positions)
        ):
            check = self._digest_positions[self._digest_cursor]
            if check < nxt:
                nxt = check
        if self._stop_at < nxt:
            nxt = self._stop_at
        return nxt

    def _on_pause(self) -> bool:
        """Handle a scheduled pause at the current dynamic id.

        Returns ``True`` when the run should stop because it converged onto
        the golden execution.
        """
        if self._dyn == self._next_capture:
            tracing = self.sink is not None and getattr(self.sink, "wants_events", True)
            self.snapshots.append(
                Snapshot(
                    dyn=self._dyn,
                    frames=[_FrameImage(f) for f in self._frames],
                    memory=self.memory.capture_image(),
                    last_writer=dict(self._last_writer) if tracing else None,
                )
            )
            reg = _metrics_registry()
            if reg.enabled:
                reg.inc("engine.snapshots", backend=self.backend)
            if (
                self.snapshot_budget is not None
                and len(self.snapshots) >= self.snapshot_budget
            ):
                # thin-by-doubling: drop every other snapshot and double the
                # interval; every retained position (even multiples of the
                # old interval) is a multiple of the new one
                del self.snapshots[1::2]
                self.snapshot_interval *= 2
                self._next_capture = self.snapshots[-1].dyn + self.snapshot_interval
            else:
                self._next_capture += self.snapshot_interval
        if (
            self._golden_schedule is not None
            and self._check_cursor < len(self._golden_schedule)
            and self._dyn == self._golden_schedule[self._check_cursor].dyn
        ):
            golden = self._golden_schedule[self._check_cursor]
            self._check_cursor += 1
            if golden.matches_live(self):
                self.converged = True
                self.converged_at = golden.dyn
                return True
        if (
            self._digest_positions is not None
            and self._digest_cursor < len(self._digest_positions)
            and self._dyn == self._digest_positions[self._digest_cursor]
        ):
            self._digest_cursor += 1
            digest = self.state_digest()
            golden = self._golden_digests.get(self._dyn)
            if golden is not None and digest == golden:
                self.converged = True
                self.converged_at = self._dyn
                return True
            if self._memo is not None:
                entry = self._memo.lookup(self._dyn, digest)
                if entry is not None:
                    self.memo_entry = entry
                    return True
            self.visited.append((self._dyn, digest))
        if self._dyn == self._stop_at:
            self.paused = True
            return True
        return False

    # ------------------------------------------------------------------ #
    # the hot loop
    # ------------------------------------------------------------------ #
    def _loop(self) -> ExecutionResult:  # noqa: C901 - deliberately flat
        frames = self._frames
        memory = self.memory
        sink = self.sink
        tracing = sink is not None and getattr(sink, "wants_events", True)
        ticking = sink is not None and not tracing
        sink_append = sink.append if tracing else None
        sink_tick = sink.tick if ticking else None
        resolve = memory.resolve
        check_access = Memory._check_access_type
        last_writer = self._last_writer
        fault = self.fault
        fault_dyn = fault.dynamic_id if fault is not None else -1
        fault_operand = fault is not None and fault.target is FaultTarget.OPERAND
        fault_result = fault is not None and fault.target is FaultTarget.RESULT
        fault_store_old = fault is not None and fault.target is FaultTarget.STORE_DEST_OLD
        max_steps = self.max_steps
        max_depth = self.max_call_depth
        functions = self.program.functions
        module = self.module

        frame = frames[-1]
        ops = frame.df.ops
        regs = frame.regs
        prods = frame.prods
        pc = frame.pc
        dyn = self._dyn
        next_pause = self._next_pause()
        return_value: Optional[Number] = None

        # MIR fast path: dispatch whole fused segments when the sink (if
        # any) supports bulk emission.  fast_mode: 0 off, 1 sink-free,
        # 2 counting (tick_block), 3 traced (append_block).
        mir = self._mir
        fast_mode = 0
        if mir is not None:
            if sink is None:
                fast_mode = 1
            elif tracing:
                if getattr(sink, "append_block", None) is not None:
                    fast_mode = 3
            elif getattr(sink, "tick_block", None) is not None:
                fast_mode = 2
        mir_fns = mir.functions if fast_mode else None
        dispatch = mir_fns[frame.df.name].dispatch if fast_mode else None
        sink_tick_block = sink.tick_block if fast_mode == 2 else None
        cell = [0]
        # telemetry accumulators: plain local ints in the hot loop, flushed
        # to the metrics registry exactly once per _loop call (see finally)
        entry_dyn = dyn
        segs = 0
        seg_ops = 0

        try:
            while True:
                if dyn >= max_steps:
                    raise StepLimitExceeded(max_steps)
                if dyn == next_pause:
                    frame.pc = pc
                    self._dyn = dyn
                    if self._on_pause():
                        return ExecutionResult(
                            return_value=None, steps=dyn, trace=sink
                        )
                    next_pause = self._next_pause()

                if fast_mode:
                    seg = dispatch[pc]
                    if seg is not None:
                        end = dyn + seg.n_ops
                        # dispatch only when the whole segment fits before
                        # the next pause / step limit and no fault is armed
                        # inside its dynamic window
                        if (
                            end <= next_pause
                            and end <= max_steps
                            and (fault_dyn < dyn or fault_dyn >= end)
                        ):
                            try:
                                if fast_mode == 3:
                                    fn = seg.traced or seg.compile_traced()
                                    pc = fn(
                                        frame, regs, prods, memory, sink,
                                        last_writer, dyn, cell,
                                    )
                                else:
                                    pc = seg.plain(frame, regs, memory, cell)
                                    if fast_mode == 2:
                                        sink_tick_block(seg.counts, seg.n_ops)
                            except BaseException:
                                stepped = cell[0]
                                cell[0] = 0
                                dyn += stepped
                                if fast_mode == 2 and stepped:
                                    sink_tick_block(
                                        seg.counts_prefix(stepped), stepped
                                    )
                                raise
                            dyn = end
                            segs += 1
                            seg_ops += seg.n_ops
                            continue

                op = ops[pc]
                kind = op.kind

                # ---------------------------------------------------- #
                # operand resolution
                # ---------------------------------------------------- #
                values: List[Number] = []
                for s, c in zip(op.src, op.consts):
                    if s >= 0:
                        v = regs[s]
                        if v is _UNDEF:
                            raise VMError(
                                f"use of value {op.src_names[len(values)]} "
                                f"before definition"
                            )
                        values.append(v)
                    else:
                        values.append(c)

                if dyn == fault_dyn and fault_operand:
                    index = fault.operand_index
                    if index >= len(values):
                        raise VMError(
                            f"fault operand index {index} out of range for "
                            f"{op.opcode.value} with {len(values)} operands"
                        )
                    values[index] = flip_bit(
                        values[index], fault.bit, op.op_types[index]
                    )

                # ---------------------------------------------------- #
                # execution
                # ---------------------------------------------------- #
                result: Optional[Number] = None
                address: Optional[int] = None
                object_name: Optional[str] = None
                element_index: Optional[int] = None
                writer_id = -1
                taken_label: Optional[str] = None
                next_pc = pc + 1

                if kind == K_FN:
                    result = op.fn(values)
                elif kind == K_LOAD:
                    address = int(values[0])
                    obj, element_index = resolve(address)
                    object_name = obj.name
                    check_access(obj, op.result_type, address)
                    result = obj.get(element_index)
                    if tracing:
                        writer_id = last_writer.get(address, -1)
                elif kind == K_STORE:
                    address = int(values[1])
                    obj, element_index = resolve(address)
                    object_name = obj.name
                    if dyn == fault_dyn and fault_store_old:
                        memory.flip_bit_at(address, fault.bit)
                    check_access(obj, op.op_types[0], address)
                    obj.set(element_index, values[0])
                    if tracing:
                        last_writer[address] = dyn
                elif kind == K_GEP:
                    result = int(values[0]) + int(values[1]) * op.gep_size
                elif kind == K_BR_COND:
                    if values[0]:
                        next_pc = op.pc_true
                        taken_label = op.label_true
                    else:
                        next_pc = op.pc_false
                        taken_label = op.label_false
                    frame.prev_block = op.block_index
                elif kind == K_BR:
                    next_pc = op.pc_true
                    taken_label = op.label_true
                    frame.prev_block = op.block_index
                elif kind == K_CALL_INTRINSIC:
                    result = op.fn(values)
                elif kind == K_RET:
                    result = values[0] if values else None
                elif kind == K_CALL_USER:
                    callee_df = functions.get(op.callee)
                    if callee_df is None:
                        raise UnknownIntrinsic(
                            f"call to unknown function {op.callee!r}"
                        )
                    if len(frames) >= max_depth:
                        raise VMError(
                            f"call depth limit ({max_depth}) exceeded"
                        )
                    if tracing:
                        sink_append(
                            TraceEvent(
                                dynamic_id=dyn,
                                opcode=Opcode.CALL,
                                function=op.function,
                                block=op.block_label,
                                static_uid=op.static_uid,
                                source_line=op.source_line,
                                operand_values=tuple(values),
                                operand_types=op.op_types,
                                operand_producers=tuple(
                                    prods[s] if s >= 0 else -1 for s in op.src
                                ),
                                operand_kinds=op.op_kinds,
                                result_value=None,
                                result_type=op.result_type if op.has_result else None,
                                predicate=None,
                                callee=op.callee,
                                address=None,
                                object_name=None,
                                element_index=None,
                                writer_id=-1,
                                taken_label=None,
                            )
                        )
                    elif ticking:
                        sink_tick(Opcode.CALL)
                    frame.pc = next_pc
                    callee_frame = _Frame(callee_df)
                    # mirror the interpreter's zip semantics on arity
                    # mismatch: surplus arguments are ignored, missing ones
                    # leave their slots undefined (raising on first use)
                    nargs = min(callee_df.nargs, len(values))
                    callee_frame.regs[:nargs] = values[:nargs]
                    if tracing:
                        callee_frame.prods[:nargs] = [
                            prods[s] if s >= 0 else -1 for s in op.src[:nargs]
                        ]
                    callee_frame.ret_slot = op.dest
                    callee_frame.ret_dyn = dyn
                    frames.append(callee_frame)
                    dyn += 1
                    frame = callee_frame
                    ops = callee_df.ops
                    regs = frame.regs
                    prods = frame.prods
                    if fast_mode:
                        dispatch = mir_fns[callee_df.name].dispatch
                    pc = 0
                    continue
                elif kind == K_ALLOCA:
                    obj = memory.allocate_stack(
                        op.alloca_hint, op.alloca_type, op.alloca_count
                    )
                    frame.stack_objects.append(obj)
                    result = obj.base
                else:  # K_PHI
                    prev = frame.prev_block
                    if prev < 0:
                        raise VMError("phi executed in the entry block")
                    position = op.phi_by_block.get(prev)
                    if position is None:
                        raise VMError(
                            f"phi has no incoming value for predecessor "
                            f"{frame.df.block_labels[prev]}"
                        )
                    result = values[position]

                dest = op.dest
                if dest >= 0:
                    if dyn == fault_dyn and fault_result and kind != K_CALL_INTRINSIC:
                        result = flip_bit(result, fault.bit, op.result_type)
                    regs[dest] = result
                    if tracing:
                        prods[dest] = dyn

                if tracing:
                    sink_append(
                        TraceEvent(
                            dynamic_id=dyn,
                            opcode=op.opcode,
                            function=op.function,
                            block=op.block_label,
                            static_uid=op.static_uid,
                            source_line=op.source_line,
                            operand_values=tuple(values),
                            operand_types=op.op_types,
                            operand_producers=tuple(
                                prods[s] if s >= 0 else -1 for s in op.src
                            ),
                            operand_kinds=op.op_kinds,
                            result_value=result if op.has_result else None,
                            result_type=op.result_type if op.has_result else None,
                            predicate=op.predicate_str,
                            callee=op.callee,
                            address=address,
                            object_name=object_name,
                            element_index=element_index,
                            writer_id=writer_id,
                            taken_label=taken_label,
                        )
                    )
                elif ticking:
                    sink_tick(op.opcode)
                dyn += 1

                if kind == K_RET:
                    frames.pop()
                    for obj in frame.stack_objects:
                        memory.release(obj)
                    if not frames:
                        return_value = result
                        break
                    ret_slot = frame.ret_slot
                    ret_dyn = frame.ret_dyn
                    frame = frames[-1]
                    if ret_slot >= 0:
                        if result is None:
                            raise VMError(
                                f"call to {op.function} returned no value"
                            )
                        frame.regs[ret_slot] = result
                        if tracing:
                            frame.prods[ret_slot] = ret_dyn
                    ops = frame.df.ops
                    regs = frame.regs
                    prods = frame.prods
                    if fast_mode:
                        dispatch = mir_fns[frame.df.name].dispatch
                    pc = frame.pc
                    continue

                pc = next_pc
        except BaseException:
            # release any stack allocations still owned by live frames so a
            # crashing run leaves memory as the recursive interpreter would
            while frames:
                dead = frames.pop()
                for obj in dead.stack_objects:
                    memory.release(obj)
            raise
        finally:
            self._dyn = dyn
            reg = _metrics_registry()
            if reg.enabled:
                executed = dyn - entry_dyn
                if executed:
                    reg.inc("engine.ops", executed, backend=self.backend)
                if segs:
                    reg.inc(
                        "engine.segment_dispatches", segs, backend=self.backend
                    )
                    reg.inc("engine.segment_ops", seg_ops, backend=self.backend)

        return ExecutionResult(return_value=return_value, steps=dyn, trace=sink)
