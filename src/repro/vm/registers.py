"""Physical-register allocation simulation over a dynamic trace.

MOARD associates data semantics with *register* contents: "MOARD tracks the
register allocation when analyzing the trace, such that we can know at any
moment which registers have the data of the target data object" (§IV).  The
VM already gives the analyses value-level provenance, but this module keeps
the register-file view for fidelity: it replays a trace against a bounded
register file with least-recently-used spilling and reports, per dynamic
instruction, which physical registers currently hold values loaded from a
given data object.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.tracing.trace import Trace


@dataclass
class RegisterFile:
    """A fixed pool of physical registers with LRU replacement."""

    num_registers: int = 16
    #: register index -> dynamic id of the value currently held (or None)
    contents: List[Optional[int]] = field(default_factory=list)
    spills: int = 0

    def __post_init__(self) -> None:
        if self.num_registers <= 0:
            raise ValueError("register file needs at least one register")
        if not self.contents:
            self.contents = [None] * self.num_registers
        self._lru: "OrderedDict[int, None]" = OrderedDict(
            (i, None) for i in range(self.num_registers)
        )

    def _touch(self, register: int) -> None:
        self._lru.move_to_end(register)

    def assign(self, value_id: int) -> int:
        """Place ``value_id`` into a register, spilling the LRU one if full."""
        for register, held in enumerate(self.contents):
            if held is None:
                self.contents[register] = value_id
                self._touch(register)
                return register
        register = next(iter(self._lru))
        if self.contents[register] is not None:
            self.spills += 1
        self.contents[register] = value_id
        self._touch(register)
        return register

    def locate(self, value_id: int) -> Optional[int]:
        for register, held in enumerate(self.contents):
            if held == value_id:
                self._touch(register)
                return register
        return None


@dataclass
class RegisterAllocation:
    """Result of replaying a trace through :class:`RegisterFile`.

    Attributes
    ----------
    assignment:
        dynamic id -> register index holding that instruction's result.
    object_residency:
        dynamic id -> set of registers holding (unmodified) values of the
        target data object at that point in the execution.
    spills:
        Number of LRU evictions of still-referenced values.
    """

    num_registers: int
    assignment: Dict[int, int]
    object_residency: Dict[int, Set[int]]
    spills: int

    def registers_holding_object_at(self, dynamic_id: int) -> Set[int]:
        """Registers holding values of the tracked object just after ``dynamic_id``."""
        return self.object_residency.get(dynamic_id, set())

    def max_residency(self) -> int:
        """Peak number of registers simultaneously holding object values."""
        if not self.object_residency:
            return 0
        return max(len(s) for s in self.object_residency.values())


def allocate_registers(
    trace: Trace,
    object_name: Optional[str] = None,
    num_registers: int = 16,
) -> RegisterAllocation:
    """Replay ``trace`` through a simulated register file.

    Every instruction result is assigned a register (reusing a free one or
    spilling the least recently used).  When ``object_name`` is given, the
    returned allocation also records which registers held values loaded from
    that object after each dynamic instruction — the register-level view of
    data semantics the paper describes.
    """
    register_file = RegisterFile(num_registers=num_registers)
    assignment: Dict[int, int] = {}
    residency: Dict[int, Set[int]] = {}
    #: register -> dynamic id of the load event whose value it holds (if that
    #: value came straight from the tracked object)
    object_values_in_registers: Dict[int, int] = {}

    for event in trace:
        if event.result_value is not None or event.is_load:
            register = register_file.assign(event.dynamic_id)
            assignment[event.dynamic_id] = register
            # a register that gets a new value no longer holds the old one
            object_values_in_registers.pop(register, None)
            if (
                object_name is not None
                and event.is_load
                and event.object_name == object_name
            ):
                object_values_in_registers[register] = event.dynamic_id
        if object_name is not None:
            residency[event.dynamic_id] = set(object_values_in_registers)

    return RegisterAllocation(
        num_registers=num_registers,
        assignment=assignment,
        object_residency=residency,
        spills=register_file.spills,
    )
