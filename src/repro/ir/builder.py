"""Convenience builder for constructing IR.

The :class:`IRBuilder` keeps a current insertion block and provides one
method per opcode with light type checking.  The frontend uses it to lower
kernel ASTs; tests and examples use it to construct small programs by hand.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    FCmpPredicate,
    ICmpPredicate,
    Instruction,
    Opcode,
)
from repro.ir.types import (
    F32,
    F64,
    I1,
    I64,
    IRType,
    PointerType,
    VOID,
    pointer_to,
)
from repro.ir.values import Constant, Value

Number = Union[int, float]
Operand = Union[Value, Number]


class IRBuilder:
    """Build instructions into a function, block by block."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.block: Optional[BasicBlock] = function.blocks[0] if function.blocks else None
        #: Source line attached to newly created instructions (frontend sets it).
        self.current_line: Optional[int] = None

    # ------------------------------------------------------------------ #
    # insertion point management
    # ------------------------------------------------------------------ #
    def set_block(self, block: BasicBlock) -> None:
        self.block = block

    def new_block(self, label: str) -> BasicBlock:
        return self.function.add_block(label)

    def _insert(self, instruction: Instruction) -> Instruction:
        if self.block is None:
            raise RuntimeError("IRBuilder has no insertion block")
        if self.block.is_terminated:
            raise RuntimeError(
                f"cannot append {instruction.opcode.value} to terminated block "
                f"{self.block.label}"
            )
        instruction.source_line = self.current_line
        return self.block.append(instruction)

    # ------------------------------------------------------------------ #
    # operand coercion
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(value: Operand, type: IRType) -> Value:
        if isinstance(value, Value):
            return value
        return Constant(type, value)

    # ------------------------------------------------------------------ #
    # memory
    # ------------------------------------------------------------------ #
    def alloca(self, type: IRType, count: int = 1, name: str = "") -> Instruction:
        """Allocate ``count`` elements of ``type`` in the function's frame."""
        return self._insert(
            Instruction(
                Opcode.ALLOCA, pointer_to(type), [], name=name, alloca_count=count
            )
        )

    def load(self, pointer: Value, name: str = "") -> Instruction:
        ptr_type = pointer.type
        if not isinstance(ptr_type, PointerType) or ptr_type.pointee is None:
            raise TypeError(f"load requires a typed pointer, got {ptr_type}")
        return self._insert(
            Instruction(Opcode.LOAD, ptr_type.pointee, [pointer], name=name)
        )

    def store(self, value: Operand, pointer: Value) -> Instruction:
        ptr_type = pointer.type
        if not isinstance(ptr_type, PointerType) or ptr_type.pointee is None:
            raise TypeError(f"store requires a typed pointer, got {ptr_type}")
        value = self._coerce(value, ptr_type.pointee)
        return self._insert(Instruction(Opcode.STORE, VOID, [value, pointer]))

    def gep(self, pointer: Value, index: Operand, name: str = "") -> Instruction:
        """Pointer arithmetic: ``pointer + index * sizeof(pointee)``."""
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"gep requires a pointer, got {pointer.type}")
        index = self._coerce(index, I64)
        return self._insert(
            Instruction(Opcode.GEP, pointer.type, [pointer, index], name=name)
        )

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def _binary(
        self, opcode: Opcode, lhs: Operand, rhs: Operand, type: IRType, name: str
    ) -> Instruction:
        lhs = self._coerce(lhs, type)
        rhs = self._coerce(rhs, type)
        return self._insert(Instruction(opcode, type, [lhs, rhs], name=name))

    # integer
    def add(self, lhs: Operand, rhs: Operand, type: IRType = I64, name: str = "") -> Instruction:
        return self._binary(Opcode.ADD, lhs, rhs, type, name)

    def sub(self, lhs: Operand, rhs: Operand, type: IRType = I64, name: str = "") -> Instruction:
        return self._binary(Opcode.SUB, lhs, rhs, type, name)

    def mul(self, lhs: Operand, rhs: Operand, type: IRType = I64, name: str = "") -> Instruction:
        return self._binary(Opcode.MUL, lhs, rhs, type, name)

    def sdiv(self, lhs: Operand, rhs: Operand, type: IRType = I64, name: str = "") -> Instruction:
        return self._binary(Opcode.SDIV, lhs, rhs, type, name)

    def srem(self, lhs: Operand, rhs: Operand, type: IRType = I64, name: str = "") -> Instruction:
        return self._binary(Opcode.SREM, lhs, rhs, type, name)

    def shl(self, lhs: Operand, rhs: Operand, type: IRType = I64, name: str = "") -> Instruction:
        return self._binary(Opcode.SHL, lhs, rhs, type, name)

    def lshr(self, lhs: Operand, rhs: Operand, type: IRType = I64, name: str = "") -> Instruction:
        return self._binary(Opcode.LSHR, lhs, rhs, type, name)

    def ashr(self, lhs: Operand, rhs: Operand, type: IRType = I64, name: str = "") -> Instruction:
        return self._binary(Opcode.ASHR, lhs, rhs, type, name)

    def and_(self, lhs: Operand, rhs: Operand, type: IRType = I64, name: str = "") -> Instruction:
        return self._binary(Opcode.AND, lhs, rhs, type, name)

    def or_(self, lhs: Operand, rhs: Operand, type: IRType = I64, name: str = "") -> Instruction:
        return self._binary(Opcode.OR, lhs, rhs, type, name)

    def xor(self, lhs: Operand, rhs: Operand, type: IRType = I64, name: str = "") -> Instruction:
        return self._binary(Opcode.XOR, lhs, rhs, type, name)

    # float
    def fadd(self, lhs: Operand, rhs: Operand, type: IRType = F64, name: str = "") -> Instruction:
        return self._binary(Opcode.FADD, lhs, rhs, type, name)

    def fsub(self, lhs: Operand, rhs: Operand, type: IRType = F64, name: str = "") -> Instruction:
        return self._binary(Opcode.FSUB, lhs, rhs, type, name)

    def fmul(self, lhs: Operand, rhs: Operand, type: IRType = F64, name: str = "") -> Instruction:
        return self._binary(Opcode.FMUL, lhs, rhs, type, name)

    def fdiv(self, lhs: Operand, rhs: Operand, type: IRType = F64, name: str = "") -> Instruction:
        return self._binary(Opcode.FDIV, lhs, rhs, type, name)

    def frem(self, lhs: Operand, rhs: Operand, type: IRType = F64, name: str = "") -> Instruction:
        return self._binary(Opcode.FREM, lhs, rhs, type, name)

    def fneg(self, value: Operand, type: IRType = F64, name: str = "") -> Instruction:
        value = self._coerce(value, type)
        return self._insert(Instruction(Opcode.FNEG, type, [value], name=name))

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def _conversion(
        self, opcode: Opcode, value: Value, to_type: IRType, name: str
    ) -> Instruction:
        return self._insert(Instruction(opcode, to_type, [value], name=name))

    def trunc(self, value: Value, to_type: IRType, name: str = "") -> Instruction:
        return self._conversion(Opcode.TRUNC, value, to_type, name)

    def zext(self, value: Value, to_type: IRType, name: str = "") -> Instruction:
        return self._conversion(Opcode.ZEXT, value, to_type, name)

    def sext(self, value: Value, to_type: IRType, name: str = "") -> Instruction:
        return self._conversion(Opcode.SEXT, value, to_type, name)

    def fptosi(self, value: Value, to_type: IRType = I64, name: str = "") -> Instruction:
        return self._conversion(Opcode.FPTOSI, value, to_type, name)

    def sitofp(self, value: Value, to_type: IRType = F64, name: str = "") -> Instruction:
        return self._conversion(Opcode.SITOFP, value, to_type, name)

    def fptrunc(self, value: Value, to_type: IRType = F32, name: str = "") -> Instruction:
        return self._conversion(Opcode.FPTRUNC, value, to_type, name)

    def fpext(self, value: Value, to_type: IRType = F64, name: str = "") -> Instruction:
        return self._conversion(Opcode.FPEXT, value, to_type, name)

    def bitcast(self, value: Value, to_type: IRType, name: str = "") -> Instruction:
        return self._conversion(Opcode.BITCAST, value, to_type, name)

    # ------------------------------------------------------------------ #
    # comparisons and select
    # ------------------------------------------------------------------ #
    def icmp(
        self,
        predicate: ICmpPredicate,
        lhs: Operand,
        rhs: Operand,
        type: IRType = I64,
        name: str = "",
    ) -> Instruction:
        lhs = self._coerce(lhs, type)
        rhs = self._coerce(rhs, type)
        return self._insert(
            Instruction(Opcode.ICMP, I1, [lhs, rhs], name=name, predicate=predicate)
        )

    def fcmp(
        self,
        predicate: FCmpPredicate,
        lhs: Operand,
        rhs: Operand,
        type: IRType = F64,
        name: str = "",
    ) -> Instruction:
        lhs = self._coerce(lhs, type)
        rhs = self._coerce(rhs, type)
        return self._insert(
            Instruction(Opcode.FCMP, I1, [lhs, rhs], name=name, predicate=predicate)
        )

    def select(
        self, cond: Value, if_true: Value, if_false: Value, name: str = ""
    ) -> Instruction:
        return self._insert(
            Instruction(
                Opcode.SELECT, if_true.type, [cond, if_true, if_false], name=name
            )
        )

    # ------------------------------------------------------------------ #
    # control flow
    # ------------------------------------------------------------------ #
    def br(self, target: BasicBlock) -> Instruction:
        """Unconditional branch."""
        return self._insert(Instruction(Opcode.BR, VOID, [], targets=[target]))

    def cond_br(
        self, cond: Value, if_true: BasicBlock, if_false: BasicBlock
    ) -> Instruction:
        return self._insert(
            Instruction(Opcode.BR, VOID, [cond], targets=[if_true, if_false])
        )

    def ret(self, value: Optional[Value] = None) -> Instruction:
        operands: List[Value] = [] if value is None else [value]
        return self._insert(Instruction(Opcode.RET, VOID, operands))

    def call(
        self,
        callee: str,
        args: Sequence[Value],
        return_type: IRType = F64,
        name: str = "",
    ) -> Instruction:
        return self._insert(
            Instruction(Opcode.CALL, return_type, list(args), name=name, callee=callee)
        )

    def phi(
        self,
        type: IRType,
        incoming: Sequence[Value],
        blocks: Sequence[BasicBlock],
        name: str = "",
    ) -> Instruction:
        if len(incoming) != len(blocks):
            raise ValueError("phi requires one incoming value per block")
        return self._insert(
            Instruction(
                Opcode.PHI,
                type,
                list(incoming),
                name=name,
                incoming_blocks=list(blocks),
            )
        )
