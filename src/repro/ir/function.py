"""Functions, basic blocks and modules.

A :class:`Module` is a named collection of :class:`Function` objects plus the
set of intrinsic names the VM provides.  A :class:`Function` is a list of
:class:`BasicBlock` objects, the first of which is the entry block.  Blocks
hold instructions; the last instruction of every block must be a terminator
(``br`` or ``ret``) — the verifier enforces this.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.ir.instructions import Instruction, Opcode
from repro.ir.types import IRType, VOID
from repro.ir.values import Argument


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    __slots__ = ("label", "instructions", "parent")

    def __init__(self, label: str, parent: Optional["Function"] = None) -> None:
        self.label = label
        self.instructions: List[Instruction] = []
        self.parent = parent

    # ------------------------------------------------------------------ #
    def append(self, instruction: Instruction) -> Instruction:
        """Append ``instruction`` and set its parent link."""
        instruction.parent = self
        self.instructions.append(instruction)
        return instruction

    @property
    def terminator(self) -> Optional[Instruction]:
        """The terminating instruction, or ``None`` if the block is open."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["BasicBlock"]:
        """Blocks reachable directly from this block's terminator."""
        term = self.terminator
        if term is None or term.opcode is Opcode.RET:
            return []
        return list(term.targets)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __bool__(self) -> bool:
        # An empty block is still a real branch target; never let ``len == 0``
        # make a block falsy (e.g. in ``else_block or merge_block`` patterns).
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.label}: {len(self.instructions)} instrs>"


class Function:
    """A single IR function.

    Parameters
    ----------
    name:
        Function name (unique within a module).
    arg_types / arg_names:
        Formal parameter types and names.
    return_type:
        Result type; ``VOID`` for procedures.
    """

    def __init__(
        self,
        name: str,
        arg_types: Sequence[IRType],
        arg_names: Sequence[str],
        return_type: IRType = VOID,
    ) -> None:
        if len(arg_types) != len(arg_names):
            raise ValueError("arg_types and arg_names must have the same length")
        self.name = name
        self.return_type = return_type
        self.args: List[Argument] = [
            Argument(t, n, i) for i, (t, n) in enumerate(zip(arg_types, arg_names))
        ]
        self.blocks: List[BasicBlock] = []
        #: Optional metadata attached by the frontend (source file/line map).
        self.metadata: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, label: str) -> BasicBlock:
        """Create, register and return a new basic block."""
        block = BasicBlock(self._unique_label(label), self)
        self.blocks.append(block)
        return block

    def _unique_label(self, label: str) -> str:
        existing = {b.label for b in self.blocks}
        if label not in existing:
            return label
        i = 1
        while f"{label}.{i}" in existing:
            i += 1
        return f"{label}.{i}"

    def get_block(self, label: str) -> BasicBlock:
        for block in self.blocks:
            if block.label == label:
                return block
        raise KeyError(f"no block named {label!r} in function {self.name}")

    def instructions(self) -> Iterator[Instruction]:
        """Iterate over every instruction in block order."""
        for block in self.blocks:
            yield from block.instructions

    @property
    def instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks)

    def arg_by_name(self, name: str) -> Argument:
        for arg in self.args:
            if arg.name == name:
                return arg
        raise KeyError(f"function {self.name} has no argument named {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Function {self.name}({len(self.args)} args), "
            f"{len(self.blocks)} blocks, {self.instruction_count} instrs>"
        )


class Module:
    """A collection of functions compiled from one or more kernels."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function name {function.name!r}")
        self.functions[function.name] = function
        return function

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"module {self.name!r} has no function {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def __len__(self) -> int:
        return len(self.functions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Module {self.name}: {len(self.functions)} functions>"
