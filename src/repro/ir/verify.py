"""Structural verifier for IR functions and modules.

The verifier catches the class of mistakes that otherwise surface as
confusing VM errors hours into a fault-injection campaign: open basic
blocks, branch conditions that are not ``i1``, stores through non-pointer
operands, calls to unknown functions, and type-mismatched binary operands.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.ir.function import Function, Module
from repro.ir.instructions import (
    COMPARISON_OPCODES,
    FLOAT_BINARY_OPCODES,
    INT_BINARY_OPCODES,
    Instruction,
    Opcode,
)
from repro.ir.types import PointerType

#: Intrinsic functions the VM provides out of the box.  ``call`` targets must
#: either be one of these or another function in the module.
INTRINSIC_NAMES: Set[str] = {
    "sqrt",
    "fabs",
    "exp",
    "log",
    "sin",
    "cos",
    "floor",
    "ceil",
    "pow",
    "fmin",
    "fmax",
    "abs",
    "min",
    "max",
}


class VerificationError(Exception):
    """Raised when a function or module fails structural verification."""

    def __init__(self, errors: List[str]) -> None:
        super().__init__("\n".join(errors))
        self.errors = errors


def _check_instruction(
    func: Function, instr: Instruction, errors: List[str], module: Optional[Module]
) -> None:
    where = f"{func.name}:{instr.parent.label if instr.parent else '?'}"

    if instr.opcode is Opcode.STORE:
        if not isinstance(instr.operands[1].type, PointerType):
            errors.append(f"{where}: store through non-pointer operand")
        elif instr.operands[0].type != instr.operands[1].type.pointee:
            errors.append(
                f"{where}: store value type {instr.operands[0].type} does not "
                f"match pointee {instr.operands[1].type.pointee}"
            )
    elif instr.opcode is Opcode.LOAD:
        if not isinstance(instr.operands[0].type, PointerType):
            errors.append(f"{where}: load from non-pointer operand")
    elif instr.opcode is Opcode.GEP:
        if not isinstance(instr.operands[0].type, PointerType):
            errors.append(f"{where}: gep base is not a pointer")
        if not instr.operands[1].type.is_integer:
            errors.append(f"{where}: gep index is not an integer")
    elif instr.opcode in INT_BINARY_OPCODES:
        lhs, rhs = instr.operands
        if not (lhs.type.is_integer and rhs.type.is_integer):
            errors.append(f"{where}: {instr.opcode.value} on non-integer operands")
    elif instr.opcode in FLOAT_BINARY_OPCODES:
        lhs, rhs = instr.operands
        if not (lhs.type.is_float and rhs.type.is_float):
            errors.append(f"{where}: {instr.opcode.value} on non-float operands")
    elif instr.opcode in COMPARISON_OPCODES:
        if instr.predicate is None:
            errors.append(f"{where}: comparison without predicate")
    elif instr.opcode is Opcode.BR:
        if len(instr.targets) == 1 and instr.operands:
            errors.append(f"{where}: unconditional branch with a condition operand")
        if len(instr.targets) == 2:
            if not instr.operands:
                errors.append(f"{where}: conditional branch missing condition")
            elif not instr.operands[0].type.is_bool:
                errors.append(f"{where}: branch condition is not i1")
        if not instr.targets:
            errors.append(f"{where}: branch without targets")
        for target in instr.targets:
            if target not in func.blocks:
                errors.append(f"{where}: branch target {target.label} not in function")
    elif instr.opcode is Opcode.RET:
        if func.return_type.is_void and instr.operands:
            errors.append(f"{where}: ret with value in a void function")
        if not func.return_type.is_void and not instr.operands:
            errors.append(f"{where}: ret without value in a non-void function")
    elif instr.opcode is Opcode.CALL:
        if instr.callee is None:
            errors.append(f"{where}: call without callee name")
        elif instr.callee not in INTRINSIC_NAMES:
            if module is None or instr.callee not in module:
                errors.append(f"{where}: call to unknown function {instr.callee!r}")
    elif instr.opcode is Opcode.SELECT:
        if not instr.operands[0].type.is_bool:
            errors.append(f"{where}: select condition is not i1")
        if instr.operands[1].type != instr.operands[2].type:
            errors.append(f"{where}: select arms have different types")


def verify_function(
    func: Function, module: Optional[Module] = None, raise_on_error: bool = True
) -> List[str]:
    """Verify one function; return (and optionally raise with) error strings."""
    errors: List[str] = []
    if not func.blocks:
        errors.append(f"{func.name}: function has no blocks")
    for block in func.blocks:
        if not block.is_terminated:
            errors.append(f"{func.name}:{block.label}: block has no terminator")
        for i, instr in enumerate(block.instructions):
            if instr.is_terminator and i != len(block.instructions) - 1:
                errors.append(
                    f"{func.name}:{block.label}: terminator in the middle of a block"
                )
            _check_instruction(func, instr, errors, module)
    if errors and raise_on_error:
        raise VerificationError(errors)
    return errors


def verify_module(module: Module, raise_on_error: bool = True) -> List[str]:
    """Verify every function in ``module``."""
    errors: List[str] = []
    for func in module:
        errors.extend(verify_function(func, module, raise_on_error=False))
    if errors and raise_on_error:
        raise VerificationError(errors)
    return errors
