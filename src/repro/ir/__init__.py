"""A small, typed, LLVM-like intermediate representation.

This package is the lowest substrate of the MOARD reproduction.  The paper
analyses dynamic LLVM IR traces; this package provides the equivalent
architecture-independent instruction set that the rest of the system
(frontend, virtual machine, trace analysis) is built on.

The IR is deliberately small but covers every operation class the MOARD
operation-level masking rules reason about:

* memory operations (``alloca``, ``load``, ``store``, ``getelementptr``)
* integer arithmetic and bitwise logic (``add`` … ``xor``, shifts)
* floating-point arithmetic (``fadd`` … ``fdiv``)
* conversions (``trunc``, ``zext``, ``sext``, ``fptosi``, ``sitofp``, …)
* comparisons (``icmp``, ``fcmp``) and ``select``
* control flow (``br``, ``ret``) and calls to intrinsics / other functions

Public API
----------
:class:`~repro.ir.types.IRType` and the singleton type objects (``I64``,
``F64``, …), :class:`~repro.ir.values.Constant`,
:class:`~repro.ir.instructions.Instruction`, :class:`~repro.ir.function.Function`,
:class:`~repro.ir.function.Module`, :class:`~repro.ir.builder.IRBuilder`,
:func:`~repro.ir.verify.verify_module` and :func:`~repro.ir.printer.print_module`.
"""

from repro.ir.types import (
    IRType,
    TypeKind,
    VOID,
    I1,
    I8,
    I16,
    I32,
    I64,
    F32,
    F64,
    PointerType,
    pointer_to,
)
from repro.ir.values import Value, Constant, Argument, UndefValue
from repro.ir.instructions import (
    Opcode,
    ICmpPredicate,
    FCmpPredicate,
    Instruction,
    INT_BINARY_OPCODES,
    FLOAT_BINARY_OPCODES,
    SHIFT_OPCODES,
    BITWISE_OPCODES,
    CONVERSION_OPCODES,
    COMPARISON_OPCODES,
    TERMINATOR_OPCODES,
)
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.builder import IRBuilder
from repro.ir.verify import VerificationError, verify_function, verify_module
from repro.ir.printer import print_function, print_module

__all__ = [
    "IRType",
    "TypeKind",
    "VOID",
    "I1",
    "I8",
    "I16",
    "I32",
    "I64",
    "F32",
    "F64",
    "PointerType",
    "pointer_to",
    "Value",
    "Constant",
    "Argument",
    "UndefValue",
    "Opcode",
    "ICmpPredicate",
    "FCmpPredicate",
    "Instruction",
    "INT_BINARY_OPCODES",
    "FLOAT_BINARY_OPCODES",
    "SHIFT_OPCODES",
    "BITWISE_OPCODES",
    "CONVERSION_OPCODES",
    "COMPARISON_OPCODES",
    "TERMINATOR_OPCODES",
    "BasicBlock",
    "Function",
    "Module",
    "IRBuilder",
    "VerificationError",
    "verify_function",
    "verify_module",
    "print_function",
    "print_module",
]
