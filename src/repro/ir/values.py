"""Value hierarchy for the IR.

Every operand in the IR is a :class:`Value`: constants, function arguments,
the results of instructions (instructions *are* values, SSA style), or the
explicit :class:`UndefValue`.

Values carry a type and an optional name.  Names matter for diagnostics and
for the frontend's mapping of kernel-source variables onto IR values; they
are not required to be unique (the printer numbers unnamed values).
"""

from __future__ import annotations

import itertools
from typing import Optional, Union

from repro.ir.types import IRType, F32, F64, I1


_value_counter = itertools.count()


class Value:
    """Base class for anything that can appear as an operand."""

    __slots__ = ("type", "name", "uid")

    def __init__(self, type: IRType, name: str = "") -> None:
        self.type = type
        self.name = name
        #: Monotonically increasing id, unique per-process; used for stable
        #: ordering and as a dictionary key in analyses.
        self.uid = next(_value_counter)

    def short(self) -> str:
        """A short label used by the printer."""
        return f"%{self.name}" if self.name else f"%v{self.uid}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.short()}: {self.type}>"


class Constant(Value):
    """A compile-time constant integer or float.

    Integer constants are stored as Python ints (wrapped by the VM to the
    type's width at execution time); float constants as Python floats.
    """

    __slots__ = ("value",)

    def __init__(self, type: IRType, value: Union[int, float], name: str = "") -> None:
        super().__init__(type, name)
        if type.is_float:
            value = float(value)
        elif type.is_integer:
            value = int(value)
        else:
            raise TypeError(f"constants must be scalar, got type {type}")
        self.value = value

    def short(self) -> str:
        if self.type.is_float:
            return repr(self.value)
        return str(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Constant {self.type} {self.value!r}>"


def const_int(type: IRType, value: int) -> Constant:
    """Convenience constructor for integer constants."""
    return Constant(type, int(value))


def const_float(value: float, type: IRType = F64) -> Constant:
    """Convenience constructor for floating-point constants."""
    if type not in (F32, F64):
        raise TypeError("const_float requires a float type")
    return Constant(type, float(value))


def const_bool(value: bool) -> Constant:
    """Convenience constructor for ``i1`` constants."""
    return Constant(I1, 1 if value else 0)


class Argument(Value):
    """A formal parameter of a :class:`~repro.ir.function.Function`."""

    __slots__ = ("index",)

    def __init__(self, type: IRType, name: str, index: int) -> None:
        super().__init__(type, name)
        self.index = index


class UndefValue(Value):
    """An explicitly undefined value (reads of uninitialised locals)."""

    __slots__ = ()

    def short(self) -> str:
        return "undef"


def as_operand(value: Union[Value, int, float], type: Optional[IRType] = None) -> Value:
    """Coerce a Python scalar to a :class:`Constant` operand.

    Instruction-builder helpers accept raw Python numbers for convenience;
    this converts them using ``type`` as the target (required for raw
    numbers, ignored for existing :class:`Value` instances).
    """
    if isinstance(value, Value):
        return value
    if type is None:
        raise TypeError("a type is required to coerce a Python scalar to a Constant")
    return Constant(type, value)
