"""Type system for the MOARD reproduction IR.

The type system mirrors the subset of LLVM types that the paper's analysis
touches: fixed-width two's-complement integers, IEEE-754 binary32/binary64
floats, pointers (typed, byte-addressed) and ``void`` for instructions that
produce no value.

Types are immutable and interned: ``I64``, ``F64`` … are module-level
singletons, and :func:`pointer_to` returns a cached :class:`PointerType` per
pointee so identity comparison (``is``) works for the scalar types while
``==`` works uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional


class TypeKind(enum.Enum):
    """Broad classification of an :class:`IRType`."""

    VOID = "void"
    INTEGER = "int"
    FLOAT = "float"
    POINTER = "ptr"


@dataclass(frozen=True)
class IRType:
    """An IR type.

    Parameters
    ----------
    kind:
        Broad classification (void / integer / float / pointer).
    bits:
        Width of the value in bits.  ``0`` for void.  Pointers are modelled
        as 64-bit machine words.
    name:
        Canonical textual spelling (``i64``, ``double``, …) used by the
        printer and in diagnostics.
    """

    kind: TypeKind
    bits: int
    name: str

    # ------------------------------------------------------------------ #
    # classification helpers
    # ------------------------------------------------------------------ #
    @property
    def is_void(self) -> bool:
        return self.kind is TypeKind.VOID

    @property
    def is_integer(self) -> bool:
        return self.kind is TypeKind.INTEGER

    @property
    def is_float(self) -> bool:
        return self.kind is TypeKind.FLOAT

    @property
    def is_pointer(self) -> bool:
        return self.kind is TypeKind.POINTER

    @property
    def is_bool(self) -> bool:
        """True for the 1-bit integer type produced by comparisons."""
        return self.is_integer and self.bits == 1

    @property
    def size_bytes(self) -> int:
        """Storage size in bytes (minimum 1 byte for i1)."""
        if self.is_void:
            return 0
        return max(1, self.bits // 8)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    # ------------------------------------------------------------------ #
    # numeric range helpers (used by the VM for wrapping arithmetic)
    # ------------------------------------------------------------------ #
    @property
    def unsigned_max(self) -> int:
        if not self.is_integer and not self.is_pointer:
            raise TypeError(f"{self} has no integer range")
        return (1 << self.bits) - 1

    @property
    def signed_min(self) -> int:
        if not self.is_integer:
            raise TypeError(f"{self} has no integer range")
        return -(1 << (self.bits - 1)) if self.bits > 1 else 0

    @property
    def signed_max(self) -> int:
        if not self.is_integer:
            raise TypeError(f"{self} has no integer range")
        return (1 << (self.bits - 1)) - 1 if self.bits > 1 else 1


VOID = IRType(TypeKind.VOID, 0, "void")
I1 = IRType(TypeKind.INTEGER, 1, "i1")
I8 = IRType(TypeKind.INTEGER, 8, "i8")
I16 = IRType(TypeKind.INTEGER, 16, "i16")
I32 = IRType(TypeKind.INTEGER, 32, "i32")
I64 = IRType(TypeKind.INTEGER, 64, "i64")
F32 = IRType(TypeKind.FLOAT, 32, "float")
F64 = IRType(TypeKind.FLOAT, 64, "double")

#: All scalar (non-pointer, non-void) types, keyed by canonical name.
SCALAR_TYPES: Dict[str, IRType] = {
    t.name: t for t in (I1, I8, I16, I32, I64, F32, F64)
}

#: Integer types ordered by width, used by the frontend for promotions.
INTEGER_TYPES = (I1, I8, I16, I32, I64)
FLOAT_TYPES = (F32, F64)


@dataclass(frozen=True)
class PointerType(IRType):
    """A typed pointer.

    The ``pointee`` type determines the element size used by
    ``getelementptr`` scaling and by ``load``/``store`` access width.
    Pointers are 64-bit values in the VM's flat address space.
    """

    pointee: Optional[IRType] = None

    @property
    def element_size(self) -> int:
        """Size in bytes of one pointee element."""
        if self.pointee is None:
            raise TypeError("opaque pointer has no element size")
        return self.pointee.size_bytes


_POINTER_CACHE: Dict[IRType, PointerType] = {}


def pointer_to(pointee: IRType) -> PointerType:
    """Return the (cached) pointer type to ``pointee``.

    Examples
    --------
    >>> pointer_to(F64).name
    'double*'
    >>> pointer_to(F64) is pointer_to(F64)
    True
    """
    if pointee.is_void:
        raise TypeError("cannot take a pointer to void")
    cached = _POINTER_CACHE.get(pointee)
    if cached is None:
        cached = PointerType(TypeKind.POINTER, 64, f"{pointee.name}*", pointee)
        _POINTER_CACHE[pointee] = cached
    return cached


def parse_type(spec: str) -> IRType:
    """Parse a type spelling (``"i64"``, ``"double"``, ``"double*"``).

    Raises
    ------
    ValueError
        If the spelling is not a recognised type.
    """
    spec = spec.strip()
    if spec == "void":
        return VOID
    if spec.endswith("*"):
        return pointer_to(parse_type(spec[:-1]))
    try:
        return SCALAR_TYPES[spec]
    except KeyError:
        raise ValueError(f"unknown IR type spelling: {spec!r}") from None
