"""Instruction set of the MOARD reproduction IR.

The opcode vocabulary deliberately mirrors LLVM so the operation-level
masking rules of the paper (§III-C) transfer directly:

* ``store``/``trunc``/shifts are *value overwriting* candidates,
* ``and``/``or``/``xor``/``icmp``/``fcmp``/``select``/``br`` are the
  *logic & comparison* class,
* ``fadd``/``fsub``/``add``/``sub`` are *value overshadowing* candidates,
* everything else propagates errors.

Instructions are :class:`~repro.ir.values.Value` subclasses (SSA style); an
instruction with a ``void`` result type (``store``, ``br``, ``ret``) never
appears as an operand.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, TYPE_CHECKING

from repro.ir.types import IRType, VOID, I1, PointerType
from repro.ir.values import Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.function import BasicBlock


class Opcode(enum.Enum):
    """Every operation the IR (and therefore the VM and the analyses) knows."""

    # memory
    ALLOCA = "alloca"
    LOAD = "load"
    STORE = "store"
    GEP = "getelementptr"

    # integer arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SDIV = "sdiv"
    UDIV = "udiv"
    SREM = "srem"
    UREM = "urem"

    # shifts and bitwise logic
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"
    AND = "and"
    OR = "or"
    XOR = "xor"

    # floating point arithmetic
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FREM = "frem"
    FNEG = "fneg"

    # conversions
    TRUNC = "trunc"
    ZEXT = "zext"
    SEXT = "sext"
    FPTOSI = "fptosi"
    SITOFP = "sitofp"
    FPTRUNC = "fptrunc"
    FPEXT = "fpext"
    BITCAST = "bitcast"

    # comparisons / selection
    ICMP = "icmp"
    FCMP = "fcmp"
    SELECT = "select"

    # control flow
    BR = "br"
    RET = "ret"
    CALL = "call"
    PHI = "phi"


class ICmpPredicate(enum.Enum):
    """Signed/equality integer comparison predicates."""

    EQ = "eq"
    NE = "ne"
    SLT = "slt"
    SLE = "sle"
    SGT = "sgt"
    SGE = "sge"
    ULT = "ult"
    ULE = "ule"
    UGT = "ugt"
    UGE = "uge"


class FCmpPredicate(enum.Enum):
    """Ordered floating-point comparison predicates."""

    OEQ = "oeq"
    ONE = "one"
    OLT = "olt"
    OLE = "ole"
    OGT = "ogt"
    OGE = "oge"


#: Opcode groups used throughout the masking analysis.
INT_BINARY_OPCODES = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.SDIV,
        Opcode.UDIV,
        Opcode.SREM,
        Opcode.UREM,
        Opcode.SHL,
        Opcode.LSHR,
        Opcode.ASHR,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
    }
)
FLOAT_BINARY_OPCODES = frozenset(
    {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FREM}
)
SHIFT_OPCODES = frozenset({Opcode.SHL, Opcode.LSHR, Opcode.ASHR})
BITWISE_OPCODES = frozenset({Opcode.AND, Opcode.OR, Opcode.XOR})
CONVERSION_OPCODES = frozenset(
    {
        Opcode.TRUNC,
        Opcode.ZEXT,
        Opcode.SEXT,
        Opcode.FPTOSI,
        Opcode.SITOFP,
        Opcode.FPTRUNC,
        Opcode.FPEXT,
        Opcode.BITCAST,
    }
)
COMPARISON_OPCODES = frozenset({Opcode.ICMP, Opcode.FCMP})
TERMINATOR_OPCODES = frozenset({Opcode.BR, Opcode.RET})
ADDITIVE_OPCODES = frozenset({Opcode.ADD, Opcode.SUB, Opcode.FADD, Opcode.FSUB})


class Instruction(Value):
    """A single IR instruction.

    Attributes
    ----------
    opcode:
        The :class:`Opcode`.
    operands:
        Ordered operand values.  Operand conventions:

        * ``STORE``: ``[value, pointer]``
        * ``LOAD``: ``[pointer]``
        * ``GEP``: ``[pointer, index]``
        * binary ops: ``[lhs, rhs]``
        * ``ICMP``/``FCMP``: ``[lhs, rhs]`` plus :attr:`predicate`
        * ``SELECT``: ``[cond, if_true, if_false]``
        * ``BR``: ``[]`` (unconditional) or ``[cond]``; targets in
          :attr:`targets`
        * ``RET``: ``[]`` or ``[value]``
        * ``CALL``: argument values; callee name in :attr:`callee`
        * ``PHI``: incoming values; blocks in :attr:`incoming_blocks`
    """

    __slots__ = (
        "opcode",
        "operands",
        "predicate",
        "targets",
        "callee",
        "incoming_blocks",
        "alloca_count",
        "parent",
        "source_line",
    )

    def __init__(
        self,
        opcode: Opcode,
        result_type: IRType,
        operands: Sequence[Value],
        name: str = "",
        predicate: Optional[enum.Enum] = None,
        targets: Optional[List["BasicBlock"]] = None,
        callee: Optional[str] = None,
        incoming_blocks: Optional[List["BasicBlock"]] = None,
        alloca_count: int = 1,
        source_line: Optional[int] = None,
    ) -> None:
        super().__init__(result_type, name)
        self.opcode = opcode
        self.operands: List[Value] = list(operands)
        self.predicate = predicate
        self.targets: List["BasicBlock"] = list(targets) if targets else []
        self.callee = callee
        self.incoming_blocks: List["BasicBlock"] = (
            list(incoming_blocks) if incoming_blocks else []
        )
        self.alloca_count = alloca_count
        #: The basic block that owns this instruction (set on insertion).
        self.parent: Optional["BasicBlock"] = None
        #: Kernel-source line this instruction was generated from, if known.
        self.source_line = source_line

    # ------------------------------------------------------------------ #
    # classification helpers used by the VM and the analyses
    # ------------------------------------------------------------------ #
    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATOR_OPCODES

    @property
    def is_memory(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.STORE, Opcode.ALLOCA, Opcode.GEP)

    @property
    def is_comparison(self) -> bool:
        return self.opcode in COMPARISON_OPCODES

    @property
    def is_binary(self) -> bool:
        return self.opcode in INT_BINARY_OPCODES or self.opcode in FLOAT_BINARY_OPCODES

    @property
    def has_result(self) -> bool:
        return not self.type.is_void

    # convenient accessors --------------------------------------------- #
    @property
    def stored_value(self) -> Value:
        assert self.opcode is Opcode.STORE
        return self.operands[0]

    @property
    def pointer_operand(self) -> Value:
        if self.opcode is Opcode.STORE:
            return self.operands[1]
        if self.opcode in (Opcode.LOAD, Opcode.GEP):
            return self.operands[0]
        raise TypeError(f"{self.opcode} has no pointer operand")

    @property
    def pointee_type(self) -> IRType:
        """Element type accessed by a load/store/gep."""
        ptr = self.pointer_operand.type
        if isinstance(ptr, PointerType) and ptr.pointee is not None:
            return ptr.pointee
        raise TypeError("pointer operand has no pointee type")

    def replace_operand(self, index: int, new: Value) -> None:
        """Replace operand ``index`` with ``new`` (used by IR transforms)."""
        self.operands[index] = new

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ops = ", ".join(op.short() for op in self.operands)
        pred = f" {self.predicate.value}" if self.predicate else ""
        return f"<{self.opcode.value}{pred} {ops}>"


def make_icmp_result_type() -> IRType:
    """Result type of comparison instructions (``i1``)."""
    return I1


def make_void() -> IRType:
    """Result type of instructions that produce no value."""
    return VOID
