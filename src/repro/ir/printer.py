"""Textual printer for the IR (LLVM-flavoured, for humans and tests)."""

from __future__ import annotations

from typing import Dict, List

from repro.ir.function import Function, Module
from repro.ir.instructions import Instruction, Opcode
from repro.ir.values import Argument, Constant, UndefValue, Value


class _Namer:
    """Assigns stable, human-readable names (%0, %1, …) to unnamed values."""

    def __init__(self) -> None:
        self._names: Dict[int, str] = {}
        self._next = 0

    def name(self, value: Value) -> str:
        if isinstance(value, Constant):
            return value.short()
        if isinstance(value, UndefValue):
            return "undef"
        if value.name:
            return f"%{value.name}"
        if value.uid not in self._names:
            self._names[value.uid] = f"%{self._next}"
            self._next += 1
        return self._names[value.uid]


def _format_instruction(instr: Instruction, namer: _Namer) -> str:
    opc = instr.opcode
    ops = [namer.name(op) for op in instr.operands]

    if opc is Opcode.STORE:
        return f"store {instr.operands[0].type} {ops[0]}, {instr.operands[1].type} {ops[1]}"
    if opc is Opcode.LOAD:
        return f"{namer.name(instr)} = load {instr.type}, {instr.operands[0].type} {ops[0]}"
    if opc is Opcode.ALLOCA:
        return f"{namer.name(instr)} = alloca {instr.type.pointee} x {instr.alloca_count}"  # type: ignore[union-attr]
    if opc is Opcode.GEP:
        return (
            f"{namer.name(instr)} = getelementptr {instr.operands[0].type} {ops[0]}, "
            f"{instr.operands[1].type} {ops[1]}"
        )
    if opc is Opcode.BR:
        if len(instr.targets) == 1:
            return f"br label %{instr.targets[0].label}"
        return (
            f"br i1 {ops[0]}, label %{instr.targets[0].label}, "
            f"label %{instr.targets[1].label}"
        )
    if opc is Opcode.RET:
        if instr.operands:
            return f"ret {instr.operands[0].type} {ops[0]}"
        return "ret void"
    if opc is Opcode.CALL:
        arglist = ", ".join(f"{op.type} {name}" for op, name in zip(instr.operands, ops))
        prefix = "" if instr.type.is_void else f"{namer.name(instr)} = "
        return f"{prefix}call {instr.type} @{instr.callee}({arglist})"
    if opc in (Opcode.ICMP, Opcode.FCMP):
        pred = instr.predicate.value if instr.predicate else "?"
        return (
            f"{namer.name(instr)} = {opc.value} {pred} "
            f"{instr.operands[0].type} {ops[0]}, {ops[1]}"
        )
    if opc is Opcode.SELECT:
        return (
            f"{namer.name(instr)} = select i1 {ops[0]}, "
            f"{instr.operands[1].type} {ops[1]}, {instr.operands[2].type} {ops[2]}"
        )
    if opc is Opcode.PHI:
        pairs = ", ".join(
            f"[ {name}, %{block.label} ]"
            for name, block in zip(ops, instr.incoming_blocks)
        )
        return f"{namer.name(instr)} = phi {instr.type} {pairs}"

    # generic binary / unary / conversion form
    prefix = "" if instr.type.is_void else f"{namer.name(instr)} = "
    operand_types = instr.operands[0].type if instr.operands else instr.type
    return f"{prefix}{opc.value} {operand_types} " + ", ".join(ops)


def print_function(func: Function) -> str:
    """Render one function as LLVM-flavoured text."""
    namer = _Namer()
    args = ", ".join(f"{a.type} %{a.name}" for a in func.args)
    lines: List[str] = [f"define {func.return_type} @{func.name}({args}) {{"]
    for block in func.blocks:
        lines.append(f"{block.label}:")
        for instr in block.instructions:
            lines.append("  " + _format_instruction(instr, namer))
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    """Render the whole module as text."""
    parts = [f"; module {module.name}"]
    parts.extend(print_function(func) for func in module)
    return "\n\n".join(parts)


def module_digest(module: Module) -> bytes:
    """Content digest of a module's printed IR.

    The printer renumbers unnamed values per function, so two structurally
    identical modules (e.g. the same workload compiled in two processes)
    print — and therefore digest — identically.  The MIR compiled-block
    cache keys on this digest so repeated campaign workers pay lowering and
    superinstruction codegen once per distinct program, not once per module
    object.
    """
    import hashlib

    return hashlib.blake2b(
        print_module(module).encode("utf-8"), digest_size=16
    ).digest()
