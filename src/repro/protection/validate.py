"""Closed-loop validation: did the protection actually help?

The advisor's plan is a *prediction*; this module closes the loop by
measurement.  For every protected object it runs the same deterministic
injection campaign twice — once against the unprotected baseline and once
against the applied variant — drawing fault sites from each program's own
golden trace (the protected program's site space for an object name is the
primary replica plus any checksum/verify phases that touch it, i.e. the
honest residual fault space).

Both campaigns run through the parallel
:class:`~repro.campaigns.orchestrator.CampaignOrchestrator`: the protected
variant is addressable as the reserved ``"protected"`` registry workload
(``plan=`` kwarg carries the persisted plan payload), the site selection is
a first-class :class:`~repro.campaigns.plans.ValidationPlan`, and shards
checkpoint into the campaign store exactly like ordinary campaigns — so a
killed validation resumes bit-identically, ``REPRO_WORKERS`` sizes the
worker pool, and every shard carries injection timings plus replay-batch
telemetry.  Outcomes land in the store's ``validation_runs`` table, keyed
by plan id and stamped with the measuring campaign's id, so ``python -m
repro protect report`` renders residual-vulnerability tables from durable
rows alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.campaigns.orchestrator import DEFAULT_SHARD_SIZE, CampaignOrchestrator
from repro.campaigns.plans import ValidationPlan
from repro.campaigns.store import CampaignStore
from repro.core.acceptance import OutcomeClass
from repro.protection.advisor import ProtectionPlan
from repro.workloads.registry import PROTECTED_WORKLOAD

#: The two measured program variants of every closed-loop validation.
VARIANTS = ("baseline", "protected")


@dataclass(frozen=True)
class ValidationOutcome:
    """Baseline-vs-protected masking measurement for one object."""

    object_name: str
    scheme: str
    variant: str
    tests: int
    successes: int
    histogram: Dict[str, int]
    #: Content-addressed id of the orchestrated campaign that measured it.
    campaign_id: str = ""

    @property
    def masked_fraction(self) -> float:
        return self.successes / self.tests if self.tests else 0.0


@dataclass
class ValidationReport:
    """All measurements of one plan's closed-loop validation.

    ``complete`` is False when ``max_shards`` interrupted either variant
    campaign — the outcomes then cover only the persisted shards and no
    ``validation_runs`` rows were written (re-run to resume and finish).
    """

    plan_id: str
    outcomes: List[ValidationOutcome]
    complete: bool = True

    def pairs(self) -> Dict[str, Dict[str, ValidationOutcome]]:
        """object name -> {variant: outcome}."""
        out: Dict[str, Dict[str, ValidationOutcome]] = {}
        for outcome in self.outcomes:
            out.setdefault(outcome.object_name, {})[outcome.variant] = outcome
        return out

    def improvement(self, object_name: str) -> float:
        """Protected minus baseline masked fraction (positive = helped)."""
        pair = self.pairs()[object_name]
        return pair["protected"].masked_fraction - pair["baseline"].masked_fraction


def variant_descriptor(
    plan: ProtectionPlan, variant: str
) -> Tuple[str, Dict[str, object]]:
    """The ``(workload_name, workload_kwargs)`` identity of a plan variant.

    ``baseline`` is the plan's own workload; ``protected`` is the reserved
    registry name whose ``plan=`` kwarg lets worker processes rebuild the
    applied variant from the persisted plan payload.
    """
    if variant == "baseline":
        return plan.workload, dict(plan.workload_kwargs)
    if variant == "protected":
        return PROTECTED_WORKLOAD, {"plan": plan.to_dict()}
    raise ValueError(f"unknown validation variant {variant!r}")


def validation_campaign(
    plan: ProtectionPlan,
    store: CampaignStore,
    variant: str,
    bit_stride: int = 8,
    max_tests: Optional[int] = 40,
    workers: Optional[int] = None,
    progress=None,
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> CampaignOrchestrator:
    """The durable campaign measuring one variant of a plan.

    A plain :class:`CampaignOrchestrator` over a
    :class:`~repro.campaigns.plans.ValidationPlan` — content-addressed from
    (variant workload, plan payload, sampling parameters), so re-running
    resumes, interrupting checkpoints, and ``run(max_shards=…)`` kills it
    deterministically for resume tests.
    """
    workload_name, workload_kwargs = variant_descriptor(plan, variant)
    sampling = ValidationPlan(
        objects=tuple(plan.protected_objects()),
        bit_stride=bit_stride,
        tests=max_tests,
    )
    return CampaignOrchestrator(
        store,
        workload_name,
        workload_kwargs,
        plan=sampling,
        workers=workers,
        shard_size=shard_size,
        progress=progress,
    )


def validate_plan(
    plan: ProtectionPlan,
    store: Optional[CampaignStore] = None,
    bit_stride: int = 8,
    max_tests: Optional[int] = 40,
    workers: Optional[int] = None,
    progress=None,
    max_shards: Optional[int] = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> ValidationReport:
    """Measure residual vulnerability of every protected object.

    When ``store`` is given, the two variant campaigns checkpoint into it
    and each measurement is persisted as a ``validation_runs`` row (the
    plan's status advances to ``"validated"``); without one, an ephemeral
    in-memory store backs the campaigns.  ``workers`` defaults to
    ``REPRO_WORKERS``/core count like every orchestrated campaign.
    ``max_shards`` bounds the shards executed per variant this run — an
    interrupted validation persists nothing to ``validation_runs`` but
    keeps its completed shards, so re-running resumes and finishes it
    (check :attr:`ValidationReport.complete`).  The protected variant is
    always rebuilt from the plan payload (the ``"protected"`` registry
    workload), so worker processes measure exactly the plan's variant.
    """
    campaign_store = store if store is not None else CampaignStore(":memory:")
    scheme_by_object = {s.object_name: s.scheme for s in plan.selections}

    outcomes: List[ValidationOutcome] = []
    complete = True
    try:
        for variant in VARIANTS:
            orchestrator = validation_campaign(
                plan,
                campaign_store,
                variant,
                bit_stride=bit_stride,
                max_tests=max_tests,
                workers=workers,
                progress=progress,
                shard_size=shard_size,
            )
            result = orchestrator.run(max_shards=max_shards)
            complete = complete and result.complete
            for object_name in plan.protected_objects():
                histogram = dict(result.histograms.get(object_name, {}))
                tests = sum(histogram.values())
                successes = sum(
                    count
                    for outcome, count in histogram.items()
                    if OutcomeClass(outcome).is_success
                )
                outcomes.append(
                    ValidationOutcome(
                        object_name=object_name,
                        scheme=scheme_by_object[object_name],
                        variant=variant,
                        tests=tests,
                        successes=successes,
                        histogram=histogram,
                        campaign_id=result.campaign_id,
                    )
                )
    finally:
        if store is None:
            campaign_store.close()

    report = ValidationReport(
        plan_id=plan.plan_id, outcomes=outcomes, complete=complete
    )
    if store is not None and complete:
        for outcome in outcomes:
            store.save_validation_run(
                plan.plan_id,
                outcome.object_name,
                outcome.variant,
                outcome.scheme,
                outcome.tests,
                outcome.successes,
                outcome.histogram,
                campaign_id=outcome.campaign_id,
            )
        store.set_plan_status(plan.plan_id, "validated")
    return report
