"""Closed-loop validation: did the protection actually help?

The advisor's plan is a *prediction*; this module closes the loop by
measurement.  For every protected object it runs the same deterministic
injection campaign twice — once against the unprotected baseline and once
against the applied variant — drawing fault sites from each program's own
golden trace (the protected program's site space for an object name is the
primary replica plus any checksum/verify phases that touch it, i.e. the
honest residual fault space).  Outcomes land in the campaign store's v3
``validation_runs`` table, keyed by plan id, so ``python -m repro protect
report`` renders residual-vulnerability tables from durable rows alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.acceptance import OutcomeClass
from repro.core.injector import DeterministicFaultInjector
from repro.core.replay import ReplayContext
from repro.core.sites import enumerate_fault_sites
from repro.protection.advisor import ProtectionPlan
from repro.protection.apply import apply_plan
from repro.tracing.columnar import ColumnarTrace

if TYPE_CHECKING:  # pragma: no cover - import only needed for typing
    from repro.campaigns.store import CampaignStore
    from repro.workloads.base import Workload


@dataclass(frozen=True)
class ValidationOutcome:
    """Baseline-vs-protected masking measurement for one object."""

    object_name: str
    scheme: str
    variant: str
    tests: int
    successes: int
    histogram: Dict[str, int]

    @property
    def masked_fraction(self) -> float:
        return self.successes / self.tests if self.tests else 0.0


@dataclass
class ValidationReport:
    """All measurements of one plan's closed-loop validation."""

    plan_id: str
    outcomes: List[ValidationOutcome]

    def pairs(self) -> Dict[str, Dict[str, ValidationOutcome]]:
        """object name -> {variant: outcome}."""
        out: Dict[str, Dict[str, ValidationOutcome]] = {}
        for outcome in self.outcomes:
            out.setdefault(outcome.object_name, {})[outcome.variant] = outcome
        return out

    def improvement(self, object_name: str) -> float:
        """Protected minus baseline masked fraction (positive = helped)."""
        pair = self.pairs()[object_name]
        return pair["protected"].masked_fraction - pair["baseline"].masked_fraction


def _campaign(
    object_name: str,
    bit_stride: int,
    max_tests: Optional[int],
    injector: DeterministicFaultInjector,
    trace,
) -> Dict[str, int]:
    """Strided-exhaustive injection over the object's valid fault sites."""
    sites = enumerate_fault_sites(trace, object_name, bit_stride=bit_stride)
    if max_tests is not None and len(sites) > max_tests:
        stride = len(sites) / max_tests
        sites = [sites[int(i * stride)] for i in range(max_tests)]
    histogram: Dict[str, int] = {}
    for site in sites:
        result = injector.inject(site.to_spec())
        histogram[result.outcome.value] = histogram.get(result.outcome.value, 0) + 1
    return histogram


def validate_plan(
    plan: ProtectionPlan,
    store: Optional["CampaignStore"] = None,
    bit_stride: int = 8,
    max_tests: Optional[int] = 40,
    protected: Optional["Workload"] = None,
) -> ValidationReport:
    """Measure residual vulnerability of every protected object.

    ``protected`` may pass a pre-built variant (saves re-instantiating in
    tests); otherwise the plan is applied fresh.  When ``store`` is given,
    each measurement is persisted as a ``validation_runs`` row and the
    plan's status advances to ``"validated"``.
    """
    from repro.workloads.registry import get_workload

    baseline = get_workload(plan.workload, **plan.workload_kwargs)
    protected = protected if protected is not None else apply_plan(plan)
    scheme_by_object = {s.object_name: s.scheme for s in plan.selections}

    outcomes: List[ValidationOutcome] = []
    for variant_name, workload in (("baseline", baseline), ("protected", protected)):
        # One golden execution per variant: the replay context records the
        # columnar trace (site enumeration) in the same run that captures
        # the injector's checkpoint schedule (the AdvfEngine pattern).
        trace = ColumnarTrace()
        context = ReplayContext(workload, sink=trace)
        injector = DeterministicFaultInjector(workload, mode="replay", context=context)
        trace.columns()  # seal the column views eagerly
        for object_name in plan.protected_objects():
            histogram = _campaign(
                object_name, bit_stride, max_tests, injector, trace
            )
            tests = sum(histogram.values())
            successes = sum(
                count
                for outcome, count in histogram.items()
                if OutcomeClass(outcome).is_success
            )
            outcomes.append(
                ValidationOutcome(
                    object_name=object_name,
                    scheme=scheme_by_object[object_name],
                    variant=variant_name,
                    tests=tests,
                    successes=successes,
                    histogram=histogram,
                )
            )

    report = ValidationReport(plan_id=plan.plan_id, outcomes=outcomes)
    if store is not None:
        for outcome in outcomes:
            store.save_validation_run(
                plan.plan_id,
                outcome.object_name,
                outcome.variant,
                outcome.scheme,
                outcome.tests,
                outcome.successes,
                outcome.histogram,
            )
        store.set_plan_status(plan.plan_id, "validated")
    return report
