"""Registry of selective-protection schemes with trace-derived cost models.

A *protection scheme* is one way of spending fault-tolerance budget on a
data object: ABFT checksums, replication with voting, re-execution, or
detection-only checksums.  The aDVF advisor (:mod:`repro.protection.advisor`)
chooses among them, so every scheme exposes two models:

* a **cost model** — how many extra dynamic operations and extra bytes the
  scheme adds, computed from the workload's golden
  :class:`~repro.tracing.columnar.ColumnarTrace` (dynamic op counts, output
  element counts, object sizes), not from hand-waved constants.  Replication
  schemes predict ``(replicas - 1) × base ops`` plus the structural cost of
  their generated compare/vote loops; the bespoke ABFT schemes trace the
  protected workload variant (cache-backed, see
  :mod:`repro.tracing.cache`) and report the exact measured delta.
* a **coverage model** — which outcome classes the scheme converts: what it
  *corrects* (faulty run ends with acceptable outputs), what it only
  *detects*, and whether crashes/hangs are covered (none of the in-process
  schemes survive a crash of the primary execution).

``benchmarks/bench_protection.py`` asserts the cost models against measured
op counts of the applied variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.tracing.cache import TraceCache, trace_digest
from repro.tracing.cursor import TraceLike

if TYPE_CHECKING:  # pragma: no cover - import only needed for typing
    from repro.workloads.base import Workload


#: Workloads with a bespoke ABFT-protected variant in the registry:
#: base name -> (variant registry name, objects the variant protects).
BESPOKE_ABFT_VARIANTS: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "matmul": ("matmul_abft", ("C",)),
    "pf": ("pf_abft", ("xe",)),
}

# Structural per-element op counts of the generated duplicate-and-compare
# wrapper loops (repro.protection.apply).  These follow directly from the
# "-O0" lowering of the generated source — every loop iteration pays the
# fixed cond/inc blocks (7 ops) plus its body loads/stores — and are
# asserted against measured traces in benchmarks/bench_protection.py.
#: `v1 = x[i]; v2 = x__r2[i]; if v1 != v2` compare-loop iteration.
COMPARE_OPS_PER_ELEMENT = 17
#: Majority-vote iteration on the fault-free (all-agree) path.
VOTE_OPS_PER_ELEMENT = 17
#: Adopt-loop iteration (`x[i] = x__r2[i]`); only runs on mismatch, so it
#: does not enter the golden-run cost, but validation replays pay it.
ADOPT_OPS_PER_ELEMENT = 11
#: Call, return-value bookkeeping and loop prologue ops per replica.
REPLICA_FIXED_OPS = 40


@dataclass(frozen=True)
class SchemeCost:
    """Predicted overhead of protecting one object with one scheme."""

    #: Extra dynamic operations added to the golden execution.
    extra_ops: int
    #: Extra bytes of data-object storage (shadow copies, checksums).
    extra_bytes: int
    #: True when the cost is paid once for the whole program, regardless of
    #: how many objects the scheme is selected for (replication schemes).
    program_wide: bool = False


@dataclass(frozen=True)
class CoverageModel:
    """What the scheme does to the unmasked share of a fault's outcomes."""

    #: The scheme restores an acceptable outcome for single SDC-class
    #: errors striking the protected object.
    corrects_sdc: bool
    #: The scheme flags single SDC-class errors without repairing them.
    detects_sdc: bool
    #: Crashes/hangs of the (primary) execution are survived.  All schemes
    #: here run in-process, so none of them cover crashes.
    covers_crash: bool = False

    def to_dict(self) -> Dict[str, bool]:
        return {
            "corrects_sdc": self.corrects_sdc,
            "detects_sdc": self.detects_sdc,
            "covers_crash": self.covers_crash,
        }


@dataclass(frozen=True)
class WorkloadCostInputs:
    """The trace- and memory-derived quantities the cost models consume."""

    #: Dynamic operations of the golden (unprotected) execution.
    base_ops: int
    #: Total elements across the workload's output objects (compare/vote
    #: loops iterate over these).
    output_elements: int
    #: Total bytes of all non-stack data objects (shadow-copy cost).
    object_bytes: int
    #: Per-object element counts and byte sizes.
    object_elements: Dict[str, int] = field(default_factory=dict)
    object_sizes: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_workload(
        cls, workload: "Workload", trace: TraceLike
    ) -> "WorkloadCostInputs":
        """Derive the inputs from a golden trace plus the initial memory."""
        memory = workload.fresh_instance().memory
        objects = memory.data_objects(include_stack=False)
        elements = {obj.name: obj.count for obj in objects}
        sizes = {obj.name: obj.size_bytes for obj in objects}
        return cls(
            base_ops=len(trace),
            output_elements=sum(
                elements.get(name, 0) for name in workload.output_objects
            ),
            object_bytes=sum(sizes.values()),
            object_elements=elements,
            object_sizes=sizes,
        )


class ProtectionScheme:
    """Base class: a named scheme with cost and coverage models.

    ``kind`` distinguishes bespoke ABFT variants (``"abft"``) from the
    generic replication transforms (``"replicate"``) the apply layer
    synthesises at the IR level.
    """

    name: str = "abstract"
    kind: str = "abstract"
    description: str = ""
    coverage: CoverageModel = CoverageModel(corrects_sdc=False, detects_sdc=False)

    def applies_to(self, workload_name: str, object_name: str) -> bool:
        """Whether the scheme can protect ``object_name`` of the workload."""
        raise NotImplementedError

    def cost(
        self,
        workload: "Workload",
        inputs: WorkloadCostInputs,
        object_name: str,
    ) -> SchemeCost:
        """Predicted overhead of protecting ``object_name``."""
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        """Serialisable summary (stored inside protection plans)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "description": self.description,
            "coverage": self.coverage.to_dict(),
        }


class AbftChecksumScheme(ProtectionScheme):
    """Bespoke ABFT (row/column checksums or checksummed replicas).

    Applies only to objects whose workload ships a hand-written ABFT
    variant (:data:`BESPOKE_ABFT_VARIANTS`).  The cost model is exact: it
    traces the variant — a pure function of ``(variant name, kwargs)``, so
    the artifact is shared through the golden-trace cache — and reports the
    measured op and byte deltas against the unprotected baseline.
    """

    name = "abft_checksum"
    kind = "abft"
    description = "algorithm-based checksum encode/verify/correct"
    coverage = CoverageModel(corrects_sdc=True, detects_sdc=True)

    def applies_to(self, workload_name: str, object_name: str) -> bool:
        variant = BESPOKE_ABFT_VARIANTS.get(workload_name)
        return variant is not None and object_name in variant[1]

    def cost(
        self,
        workload: "Workload",
        inputs: WorkloadCostInputs,
        object_name: str,
    ) -> SchemeCost:
        from repro.workloads.registry import get_workload

        variant_name, _ = BESPOKE_ABFT_VARIANTS[_registry_name(workload)]
        kwargs = _constructor_kwargs(workload)
        variant = get_workload(variant_name, **kwargs)
        trace = acquire_trace(variant, variant_name, kwargs)
        variant_inputs = WorkloadCostInputs.from_workload(variant, trace)
        return SchemeCost(
            extra_ops=max(0, variant_inputs.base_ops - inputs.base_ops),
            extra_bytes=max(0, variant_inputs.object_bytes - inputs.object_bytes),
        )


class _ReplicationScheme(ProtectionScheme):
    """Shared cost structure of the generated duplicate-and-compare family.

    Each extra replica re-executes the entry kernel (``base_ops`` dynamic
    operations, the trace-derived dominant term) on shadow copies of every
    data object; the per-element term covers the generated compare/vote
    loops over the output objects.  The cost is program-wide: one wrapper
    covers every object selected under the scheme.
    """

    kind = "replicate"
    #: Total executions of the entry kernel (primary included).
    replicas = 2
    #: Per-output-element ops of the generated comparison/vote loops.
    loop_ops_per_element = COMPARE_OPS_PER_ELEMENT

    def applies_to(self, workload_name: str, object_name: str) -> bool:
        return True

    def cost(
        self,
        workload: "Workload",
        inputs: WorkloadCostInputs,
        object_name: str,
    ) -> SchemeCost:
        extra_replicas = self.replicas - 1
        return SchemeCost(
            extra_ops=(
                extra_replicas * (inputs.base_ops + REPLICA_FIXED_OPS)
                + self.loop_ops_per_element * inputs.output_elements
            ),
            extra_bytes=extra_replicas * inputs.object_bytes,
            program_wide=True,
        )


class DuplicationVoteScheme(_ReplicationScheme):
    """Full duplication with majority voting (triple modular redundancy)."""

    name = "duplication"
    description = "3x execution, per-element majority vote on the outputs"
    coverage = CoverageModel(corrects_sdc=True, detects_sdc=True)
    replicas = 3
    loop_ops_per_element = VOTE_OPS_PER_ELEMENT


class ReexecutionScheme(_ReplicationScheme):
    """Selective re-execution: recompute the producers, adopt on mismatch."""

    name = "reexec"
    description = "re-execute the producing kernel; adopt its outputs on mismatch"
    coverage = CoverageModel(corrects_sdc=True, detects_sdc=True)
    replicas = 2
    loop_ops_per_element = COMPARE_OPS_PER_ELEMENT


class DetectOnlyScheme(_ReplicationScheme):
    """Detect-only checksum: replica output comparison, no repair.

    Converts silent corruptions into *detected* ones (counted in a flag
    object by the generated wrapper) — valuable when recovery happens
    outside the program (checkpoint/restart) — but leaves the outcome
    itself unacceptable, so the advisor only credits it a configurable
    fraction of a correcting scheme's value.
    """

    name = "detect_checksum"
    description = "re-execute and compare output checksums; flag mismatches"
    coverage = CoverageModel(corrects_sdc=False, detects_sdc=True)
    replicas = 2
    loop_ops_per_element = COMPARE_OPS_PER_ELEMENT


#: name -> scheme singleton, in deterministic registry order.
SCHEMES: Dict[str, ProtectionScheme] = {
    scheme.name: scheme
    for scheme in (
        AbftChecksumScheme(),
        DuplicationVoteScheme(),
        ReexecutionScheme(),
        DetectOnlyScheme(),
    )
}


def get_scheme(name: str) -> ProtectionScheme:
    try:
        return SCHEMES[name]
    except KeyError:
        raise KeyError(
            f"unknown protection scheme {name!r}; "
            f"available: {', '.join(sorted(SCHEMES))}"
        ) from None


def applicable_schemes(
    workload_name: str, object_name: str, names: Optional[List[str]] = None
) -> List[ProtectionScheme]:
    """The schemes that can protect ``object_name``, in registry order."""
    pool = [SCHEMES[n] for n in names] if names else list(SCHEMES.values())
    return [s for s in pool if s.applies_to(workload_name, object_name)]


# --------------------------------------------------------------------- #
# helpers shared with the apply layer
# --------------------------------------------------------------------- #
def _registry_name(workload: "Workload") -> str:
    """The registry key of a workload instance (its own name)."""
    return workload.name


def _constructor_kwargs(workload: "Workload") -> Dict[str, object]:
    """Reconstruct the size kwargs a registry factory needs.

    Workloads keep their constructor parameters as same-named attributes
    (``n``, ``cgitmax``, ``nparticles`` …), so the bespoke-variant cost
    model can re-instantiate the protected twin at identical scale.
    """
    import inspect

    kwargs: Dict[str, object] = {}
    signature = inspect.signature(type(workload).__init__)
    for name in signature.parameters:
        if name in ("self", "abft"):
            continue
        if hasattr(workload, name):
            kwargs[name] = getattr(workload, name)
    return kwargs


def acquire_trace(workload: "Workload", name: str, kwargs: Dict[str, object]):
    """Golden columnar trace of ``workload`` (through the cache if enabled)."""
    cache = TraceCache.from_env()
    if cache is None:
        return workload.traced_run(columnar=True).trace
    trace, _ = cache.get_or_build(
        trace_digest(name, kwargs),
        lambda: workload.traced_run(columnar=True).trace,
    )
    return trace
