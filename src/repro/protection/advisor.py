"""The protection advisor: budgeted aDVF-guided scheme selection.

This is the decision-making layer the paper motivates aDVF with: given the
per-object vulnerability measurements (live :class:`~repro.core.advf
.AdvfEngine` reports or persisted campaign-store rows) and a runtime
overhead budget, choose which data objects to protect with which scheme.

The objective is the *unmasked event mass* removed per object —
``participations - masked_events`` (the aDVF numerator's complement) scaled
by the share of unmasked outcomes the scheme can actually convert
(SDC-class errors; in-process schemes do not survive crashes, and the SDC
share is estimated from the report's own injection-outcome histogram).  The
constraint is the scheme cost models' predicted extra dynamic operations,
bounded by ``budget × base ops``.  Program-wide schemes (the replication
family) pay their cost once no matter how many objects they cover, so the
problem is a small multiple-choice knapsack with shared fixed costs:

* ``method="exact"`` enumerates every assignment (branch-and-bound-free
  exhaustion, feasible for the paper's object counts of <= ~8);
* ``method="greedy"`` takes candidates by reduction/marginal-cost ratio;
* ``method="auto"`` (default) runs exact when the assignment space is
  small and greedy otherwise, and both tie-break deterministically.

The resulting :class:`ProtectionPlan` is a value object: dict-serialisable,
content-addressed (``plan_id``), and sufficient to re-instantiate the
protected variant (:func:`repro.protection.apply.apply_plan`) without the
analysis artifacts that produced it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.advf import AdvfResult, ObjectReport
from repro.protection.schemes import (
    ProtectionScheme,
    SchemeCost,
    WorkloadCostInputs,
    applicable_schemes,
)
from repro.tracing.cursor import TraceLike

if TYPE_CHECKING:  # pragma: no cover - import only needed for typing
    from repro.workloads.base import Workload

#: Default share of a correcting scheme's value credited to detection-only
#: schemes (detection enables out-of-band recovery but does not repair).
DETECTION_CREDIT = 0.4

#: Assumed SDC share of unmasked outcomes when a report carries no
#: injection histogram (crashes excluded — no in-process scheme covers them).
DEFAULT_SDC_SHARE = 0.7

#: Exact search is used up to this many assignments (schemes+1 per object).
_EXACT_ASSIGNMENT_LIMIT = 200_000


def _canonical_json(value: object) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Candidate:
    """One (object, scheme) option offered to the optimizer."""

    object_name: str
    scheme: str
    cost: SchemeCost
    #: Unmasked event mass the selection is predicted to remove.
    reduction: float
    #: Unprotected unmasked event mass of the object.
    vulnerability: float
    #: Fraction of that mass the scheme converts (coverage x SDC share).
    effectiveness: float


@dataclass(frozen=True)
class Selection:
    """One chosen protection assignment inside a plan."""

    object_name: str
    scheme: str
    predicted_extra_ops: int
    predicted_extra_bytes: int
    predicted_reduction: float
    vulnerability: float
    advf: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "object_name": self.object_name,
            "scheme": self.scheme,
            "predicted_extra_ops": self.predicted_extra_ops,
            "predicted_extra_bytes": self.predicted_extra_bytes,
            "predicted_reduction": self.predicted_reduction,
            "vulnerability": self.vulnerability,
            "advf": self.advf,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Selection":
        return cls(
            object_name=str(payload["object_name"]),
            scheme=str(payload["scheme"]),
            predicted_extra_ops=int(payload["predicted_extra_ops"]),
            predicted_extra_bytes=int(payload["predicted_extra_bytes"]),
            predicted_reduction=float(payload["predicted_reduction"]),
            vulnerability=float(payload["vulnerability"]),
            advf=float(payload["advf"]),
        )


@dataclass
class ProtectionPlan:
    """The advisor's output: who gets protected, how, and at what cost."""

    workload: str
    workload_kwargs: Dict[str, object]
    #: Maximum extra dynamic operations as a fraction of the base run
    #: ("a 2x overhead budget" = up to 2x the baseline ops *extra*).
    budget: float
    base_ops: int
    selections: List[Selection]
    #: Total predicted extra ops (program-wide costs counted once).
    predicted_extra_ops: int
    predicted_extra_bytes: int
    method: str
    #: Objects considered but left unprotected (budget or no applicable scheme).
    unprotected: List[str] = field(default_factory=list)

    @property
    def plan_id(self) -> str:
        """Content address of the plan (stable across re-derivations)."""
        return "p" + hashlib.sha256(
            _canonical_json(self.to_dict()).encode("utf-8")
        ).hexdigest()[:16]

    @property
    def predicted_overhead(self) -> float:
        return self.predicted_extra_ops / self.base_ops if self.base_ops else 0.0

    def protected_objects(self) -> List[str]:
        return [selection.object_name for selection in self.selections]

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "workload_kwargs": dict(self.workload_kwargs),
            "budget": self.budget,
            "base_ops": self.base_ops,
            "selections": [selection.to_dict() for selection in self.selections],
            "predicted_extra_ops": self.predicted_extra_ops,
            "predicted_extra_bytes": self.predicted_extra_bytes,
            "method": self.method,
            "unprotected": list(self.unprotected),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ProtectionPlan":
        return cls(
            workload=str(payload["workload"]),
            workload_kwargs=dict(payload["workload_kwargs"]),
            budget=float(payload["budget"]),
            base_ops=int(payload["base_ops"]),
            selections=[
                Selection.from_dict(dict(item)) for item in payload["selections"]
            ],
            predicted_extra_ops=int(payload["predicted_extra_ops"]),
            predicted_extra_bytes=int(payload["predicted_extra_bytes"]),
            method=str(payload["method"]),
            unprotected=[str(name) for name in payload.get("unprotected", [])],
        )


class ProtectionAdvisor:
    """Solve the budgeted selective-protection problem for one workload."""

    def __init__(
        self,
        workload: "Workload",
        trace: TraceLike,
        workload_kwargs: Optional[Dict[str, object]] = None,
        schemes: Optional[Sequence[str]] = None,
        detection_credit: float = DETECTION_CREDIT,
    ) -> None:
        self.workload = workload
        self.workload_kwargs = dict(workload_kwargs or {})
        self.inputs = WorkloadCostInputs.from_workload(workload, trace)
        self.scheme_names = list(schemes) if schemes else None
        self.detection_credit = detection_credit

    # ------------------------------------------------------------------ #
    # candidate construction
    # ------------------------------------------------------------------ #
    def candidates_for(
        self, object_name: str, report: Union[ObjectReport, AdvfResult]
    ) -> List[Candidate]:
        result = report.result if isinstance(report, ObjectReport) else report
        vulnerability = max(0.0, result.participations - result.masked_events)
        sdc_share = self._sdc_share(report)
        out: List[Candidate] = []
        for scheme in applicable_schemes(
            self.workload.name, object_name, self.scheme_names
        ):
            cost = scheme.cost(self.workload, self.inputs, object_name)
            effectiveness = self._effectiveness(scheme, sdc_share)
            out.append(
                Candidate(
                    object_name=object_name,
                    scheme=scheme.name,
                    cost=cost,
                    reduction=vulnerability * effectiveness,
                    vulnerability=vulnerability,
                    effectiveness=effectiveness,
                )
            )
        return out

    def _effectiveness(self, scheme: ProtectionScheme, sdc_share: float) -> float:
        if scheme.coverage.corrects_sdc:
            return sdc_share
        if scheme.coverage.detects_sdc:
            return sdc_share * self.detection_credit
        return 0.0

    @staticmethod
    def _sdc_share(report: Union[ObjectReport, AdvfResult]) -> float:
        """SDC fraction of unmasked outcomes, from the report's own history."""
        if not isinstance(report, ObjectReport):
            return DEFAULT_SDC_SHARE
        failures = {
            outcome.value: count
            for outcome, count in report.injection_outcomes.items()
            if not outcome.is_success
        }
        total = sum(failures.values())
        if total == 0:
            return DEFAULT_SDC_SHARE
        return failures.get("unacceptable", 0) / total

    # ------------------------------------------------------------------ #
    # optimisation
    # ------------------------------------------------------------------ #
    def advise(
        self,
        reports: Dict[str, Union[ObjectReport, AdvfResult]],
        budget: float = 2.0,
        method: str = "auto",
    ) -> ProtectionPlan:
        """Choose protections under ``budget`` x base-ops extra operations."""
        if budget < 0:
            raise ValueError("budget must be non-negative")
        if method not in ("auto", "exact", "greedy"):
            raise ValueError(f"unknown advisor method {method!r}")
        budget_ops = int(budget * self.inputs.base_ops)
        object_names = sorted(reports)
        per_object = {
            name: self.candidates_for(name, reports[name]) for name in object_names
        }

        assignments = 1
        for candidates in per_object.values():
            assignments *= len(candidates) + 1
        if method == "auto":
            method = "exact" if assignments <= _EXACT_ASSIGNMENT_LIMIT else "greedy"
        if method == "exact":
            chosen = _solve_exact(object_names, per_object, budget_ops)
        else:
            chosen = _solve_greedy(object_names, per_object, budget_ops)

        extra_ops, extra_bytes = _total_cost(chosen)
        selections = [
            Selection(
                object_name=c.object_name,
                scheme=c.scheme,
                predicted_extra_ops=c.cost.extra_ops,
                predicted_extra_bytes=c.cost.extra_bytes,
                predicted_reduction=c.reduction,
                vulnerability=c.vulnerability,
                advf=_advf_of(reports[c.object_name]),
            )
            for c in chosen
        ]
        protected = {c.object_name for c in chosen}
        return ProtectionPlan(
            workload=self.workload.name,
            workload_kwargs=self.workload_kwargs,
            budget=budget,
            base_ops=self.inputs.base_ops,
            selections=selections,
            predicted_extra_ops=extra_ops,
            predicted_extra_bytes=extra_bytes,
            method=method,
            unprotected=[n for n in object_names if n not in protected],
        )


def _advf_of(report: Union[ObjectReport, AdvfResult]) -> float:
    return report.result.value if isinstance(report, ObjectReport) else report.value


def _total_cost(chosen: Sequence[Candidate]) -> Tuple[int, int]:
    """Total (ops, bytes) with program-wide scheme costs counted once."""
    extra_ops = extra_bytes = 0
    seen_program_wide = set()
    for candidate in chosen:
        if candidate.cost.program_wide:
            if candidate.scheme in seen_program_wide:
                continue
            seen_program_wide.add(candidate.scheme)
        extra_ops += candidate.cost.extra_ops
        extra_bytes += candidate.cost.extra_bytes
    return extra_ops, extra_bytes


def _solve_exact(
    object_names: List[str],
    per_object: Dict[str, List[Candidate]],
    budget_ops: int,
) -> List[Candidate]:
    """Exhaustive multiple-choice knapsack with shared program-wide costs.

    Deterministic tie-breaking: higher reduction first, then lower cost,
    then fewer selections, then lexicographic assignment order.
    """
    best: Tuple[float, int, int, List[Candidate]] = (0.0, 0, 0, [])

    def recurse(index: int, chosen: List[Candidate]) -> None:
        nonlocal best
        if index == len(object_names):
            ops, _ = _total_cost(chosen)
            if ops > budget_ops:
                return
            reduction = sum(c.reduction for c in chosen)
            key = (reduction, -ops, -len(chosen))
            best_key = (best[0], -best[1], -best[2])
            if key > best_key:
                best = (reduction, ops, len(chosen), list(chosen))
            return
        name = object_names[index]
        recurse(index + 1, chosen)  # leave the object unprotected
        for candidate in per_object[name]:
            chosen.append(candidate)
            recurse(index + 1, chosen)
            chosen.pop()

    recurse(0, [])
    return best[3]


def _solve_greedy(
    object_names: List[str],
    per_object: Dict[str, List[Candidate]],
    budget_ops: int,
) -> List[Candidate]:
    """Greedy ratio heuristic over marginal costs.

    Repeatedly takes the candidate with the best reduction per *marginal*
    op (a program-wide scheme already selected costs nothing for further
    objects) that still fits; assigned objects leave the pool.
    """
    chosen: List[Candidate] = []
    remaining = {name: list(per_object[name]) for name in object_names}
    while True:
        ops_now, _ = _total_cost(chosen)
        paid = {c.scheme for c in chosen if c.cost.program_wide}
        best_candidate: Optional[Candidate] = None
        best_key: Tuple[float, float] = (0.0, 0.0)
        for name in object_names:
            for candidate in remaining.get(name, ()):  # deterministic order
                marginal = (
                    0
                    if candidate.cost.program_wide and candidate.scheme in paid
                    else candidate.cost.extra_ops
                )
                if ops_now + marginal > budget_ops or candidate.reduction <= 0:
                    continue
                ratio = (
                    candidate.reduction / marginal
                    if marginal > 0
                    else float("inf")
                )
                key = (ratio, candidate.reduction)
                if best_candidate is None or key > best_key:
                    best_candidate, best_key = candidate, key
        if best_candidate is None:
            return chosen
        chosen.append(best_candidate)
        remaining.pop(best_candidate.object_name, None)
