"""Selective protection: aDVF-guided, budgeted, closed-loop validated.

This package is the decision-making layer the paper motivates the aDVF
model with — it turns vulnerability *measurements* into protection
*actions* and verifies them:

1. :mod:`~repro.protection.schemes` — a registry of protection schemes
   (ABFT checksums, duplication+vote, re-execution, detect-only) with
   trace-derived cost models and coverage models;
2. :mod:`~repro.protection.advisor` — the budgeted optimizer that consumes
   aDVF reports and emits a deterministic :class:`ProtectionPlan`;
3. :mod:`~repro.protection.apply` — plan application: bespoke ABFT
   workload variants plus a generic duplicate-and-compare transform
   synthesised at the IR level;
4. :mod:`~repro.protection.validate` — closed-loop validation by injection
   campaign against the protected program, persisted in the campaign
   store's v3 ``protection_plans`` / ``validation_runs`` tables.

CLI: ``python -m repro protect plan|apply|validate|report``.
"""

from repro.protection.advisor import (
    Candidate,
    ProtectionAdvisor,
    ProtectionPlan,
    Selection,
)
from repro.protection.apply import DuplicatedWorkload, apply_plan, measure_overhead
from repro.protection.schemes import (
    BESPOKE_ABFT_VARIANTS,
    CoverageModel,
    ProtectionScheme,
    SCHEMES,
    SchemeCost,
    WorkloadCostInputs,
    applicable_schemes,
    get_scheme,
)
from repro.protection.validate import (
    ValidationOutcome,
    ValidationReport,
    validate_plan,
)

__all__ = [
    "BESPOKE_ABFT_VARIANTS",
    "Candidate",
    "CoverageModel",
    "DuplicatedWorkload",
    "ProtectionAdvisor",
    "ProtectionPlan",
    "ProtectionScheme",
    "SCHEMES",
    "SchemeCost",
    "Selection",
    "ValidationOutcome",
    "ValidationReport",
    "WorkloadCostInputs",
    "applicable_schemes",
    "apply_plan",
    "get_scheme",
    "measure_overhead",
    "validate_plan",
]
