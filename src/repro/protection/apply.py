"""Applying a protection plan: build the protected workload variant.

Two application paths, composable:

* **Bespoke ABFT kernels.**  Objects covered by a hand-written ABFT variant
  (``matmul_abft``, ``pf_abft``) swap the base workload for that variant —
  the checksum encode/verify/correct phases live in the kernels themselves.
* **Generic duplicate-and-compare, synthesised at the IR level.**  For
  objects with no bespoke kernel, :class:`DuplicatedWorkload` generates a
  wrapper kernel in the restricted dialect (compiled through
  :func:`repro.frontend.compile_kernel_source` into the same module as the
  base kernels): it calls the entry once per replica on shadow copies of
  every data object, then compares / majority-votes / adopts the output
  objects element-wise.  Because the shadow objects carry distinct names
  (``x__r2`` …), the protected program's fault-site space for the original
  object names is exactly the primary replica — the validation campaign
  measures the residual vulnerability of the *named* objects.

Replica executions are bit-identical in the fault-free run, so the
protected variant's golden outputs equal the baseline's bit-for-bit (the
test suite asserts this for every mode).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.frontend.compiler import compile_kernel_source, compile_kernels
from repro.ir.function import Module
from repro.ir.types import I64
from repro.protection.schemes import BESPOKE_ABFT_VARIANTS, get_scheme
from repro.tracing.sinks import CountingSink
from repro.vm.memory import DataObject, Memory
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - import only needed for typing
    from repro.protection.advisor import ProtectionPlan


#: Wrapper behaviour per replication scheme name.
_MODE_BY_SCHEME = {
    "duplication": "vote",
    "reexec": "adopt",
    "detect_checksum": "detect",
}
#: Replica counts per wrapper mode (primary included).
_REPLICAS_BY_MODE = {"vote": 3, "adopt": 2, "detect": 2}
#: Preference order when several replication schemes land in one plan —
#: one wrapper covers the whole program, so the strongest mode wins.
_MODE_STRENGTH = {"vote": 2, "adopt": 1, "detect": 0}


class DuplicatedWorkload(Workload):
    """A workload wrapped in a generated duplicate-and-compare entry kernel.

    ``mode``:

    * ``"vote"`` — three executions, element-wise majority vote on every
      output object (and on the scalar return value);
    * ``"adopt"`` — two executions; on any output mismatch the replica's
      outputs (computed from untouched shadow inputs) are adopted;
    * ``"detect"`` — two executions; mismatches are only counted into the
      ``dwc_detect`` flag object, outputs stay as the primary produced them.
    """

    def __init__(self, base: Workload, mode: str = "adopt") -> None:
        if mode not in _REPLICAS_BY_MODE:
            raise ValueError(
                f"unknown duplication mode {mode!r}; "
                f"expected one of {sorted(_REPLICAS_BY_MODE)}"
            )
        super().__init__(seed=base.seed)
        self.base = base
        self.mode = mode
        self.replicas = _REPLICAS_BY_MODE[mode]
        self.name = f"{base.name}+dwc-{mode}"
        self.description = (
            f"{base.description} [duplicate-and-compare: {mode}, "
            f"{self.replicas} executions]"
        )
        self.code_segment = base.code_segment
        self.target_objects = tuple(base.target_objects)
        self.output_objects = tuple(base.output_objects)
        self.entry = "dwc_entry"
        self.max_steps = base.max_steps
        self.check_return_value = base.check_return_value

    @property
    def acceptance(self):
        return self.base.acceptance

    def kernels(self) -> Sequence[Callable]:
        return self.base.kernels()

    def module(self) -> Module:
        """Base kernels plus the synthesised wrapper, in one module."""
        if self._module is None:
            module = compile_kernels(list(self.kernels()), module_name=self.name)
            compile_kernel_source(self._wrapper_source(module), module)
            self._module = module
        return self._module

    def setup(self, memory: Memory) -> Dict[str, object]:
        args = self.base.setup(memory)
        wrapper_args: Dict[str, object] = dict(args)
        pointer_params = [
            key for key, value in args.items() if isinstance(value, DataObject)
        ]
        for replica in range(2, self.replicas + 1):
            for key in pointer_params:
                obj = args[key]
                wrapper_args[f"{key}__r{replica}"] = memory.allocate(
                    f"{obj.name}__r{replica}",
                    obj.element_type,
                    obj.count,
                    initial=obj.values(),
                )
        for key in self._compare_params(args):
            wrapper_args[f"vl_{key}"] = args[key].count
        if self.mode == "detect":
            wrapper_args["dwc_detect"] = memory.allocate("dwc_detect", I64, 1)
        return wrapper_args

    # ------------------------------------------------------------------ #
    # wrapper generation
    # ------------------------------------------------------------------ #
    def _compare_params(self, args: Dict[str, object]) -> List[str]:
        """Entry parameters bound to output objects, in output order."""
        by_object = {
            value.name: key
            for key, value in args.items()
            if isinstance(value, DataObject)
        }
        params = []
        for name in self.output_objects:
            key = by_object.get(name)
            if key is None:
                raise ValueError(
                    f"output object {name!r} of {self.base.name} is not bound "
                    f"to an entry parameter; cannot generate the compare loop"
                )
            params.append(key)
        return params

    def _wrapper_source(self, module: Module) -> str:
        """Source of the wrapper kernel, in the restricted dialect."""
        entry = module.get_function(self.base.entry)
        args = self.base.setup(Memory())
        pointer_params = {
            key for key, value in args.items() if isinstance(value, DataObject)
        }
        compare_params = self._compare_params(args)
        returns_value = not entry.return_type.is_void

        params: List[Tuple[str, str]] = [
            (arg.name, arg.type.name) for arg in entry.args
        ]
        for replica in range(2, self.replicas + 1):
            params.extend(
                (f"{arg.name}__r{replica}", arg.type.name)
                for arg in entry.args
                if arg.name in pointer_params
            )
        params.extend((f"vl_{key}", "i64") for key in compare_params)
        if self.mode == "detect":
            params.append(("dwc_detect", "i64*"))

        signature = ", ".join(f'{name}: "{spelling}"' for name, spelling in params)
        lines = [
            f'def dwc_entry({signature}) -> "{entry.return_type.name}":',
        ]

        def call_args(replica: int) -> str:
            return ", ".join(
                f"{arg.name}__r{replica}" if arg.name in pointer_params else arg.name
                for arg in entry.args
            )

        primary_args = ", ".join(arg.name for arg in entry.args)
        prefix = "rv1 = " if returns_value else ""
        lines.append(f"    {prefix}{self.base.entry}({primary_args})")
        for replica in range(2, self.replicas + 1):
            prefix = f"rv{replica} = " if returns_value else ""
            lines.append(f"    {prefix}{self.base.entry}({call_args(replica)})")

        if self.mode == "vote":
            lines.extend(self._vote_lines(compare_params, returns_value))
        elif self.mode == "adopt":
            lines.extend(self._adopt_lines(compare_params, returns_value))
        else:
            lines.extend(self._detect_lines(compare_params, returns_value))
        return "\n".join(lines) + "\n"

    @staticmethod
    def _vote_lines(compare_params: List[str], returns_value: bool) -> List[str]:
        lines = []
        for key in compare_params:
            lines.extend(
                [
                    f"    for i in range(vl_{key}):",
                    f"        v1 = {key}[i]",
                    f"        v2 = {key}__r2[i]",
                    "        if v1 != v2:",
                    f"            v3 = {key}__r3[i]",
                    "            best = v2",
                    "            if v1 == v3:",
                    "                best = v1",
                    f"            {key}[i] = best",
                ]
            )
        if returns_value:
            lines.extend(
                [
                    "    rv = rv1",
                    "    if rv1 != rv2:",
                    "        rv = rv2",
                    "        if rv1 == rv3:",
                    "            rv = rv1",
                    "    return rv",
                ]
            )
        return lines

    @staticmethod
    def _adopt_lines(compare_params: List[str], returns_value: bool) -> List[str]:
        lines = ["    mismatch = 0"]
        for key in compare_params:
            lines.extend(
                [
                    f"    for i in range(vl_{key}):",
                    f"        if {key}[i] != {key}__r2[i]:",
                    "            mismatch = 1",
                ]
            )
        if returns_value:
            lines.extend(["    if rv1 != rv2:", "        mismatch = 1"])
        lines.append("    if mismatch > 0:")
        for key in compare_params:
            lines.extend(
                [
                    f"        for i in range(vl_{key}):",
                    f"            {key}[i] = {key}__r2[i]",
                ]
            )
        if returns_value:
            lines.extend(
                [
                    "    rv = rv1",
                    "    if mismatch > 0:",
                    "        rv = rv2",
                    "    return rv",
                ]
            )
        else:
            # keep the if-body non-empty when there is nothing to adopt
            lines.append("        mismatch = mismatch")
        return lines

    @staticmethod
    def _detect_lines(compare_params: List[str], returns_value: bool) -> List[str]:
        lines = ["    bad = 0"]
        for key in compare_params:
            lines.extend(
                [
                    f"    for i in range(vl_{key}):",
                    f"        if {key}[i] != {key}__r2[i]:",
                    "            bad = bad + 1",
                ]
            )
        if returns_value:
            lines.extend(["    if rv1 != rv2:", "        bad = bad + 1"])
        lines.append("    dwc_detect[0] = bad")
        if returns_value:
            lines.append("    return rv1")
        return lines


# --------------------------------------------------------------------- #
# plan application
# --------------------------------------------------------------------- #
def apply_plan(plan: "ProtectionPlan") -> Workload:
    """Instantiate the protected workload variant a plan describes.

    Bespoke ABFT selections swap in the hand-written variant; any
    replication selections wrap the (possibly already swapped) workload in
    one generated duplicate-and-compare entry — the strongest requested
    mode wins, since a single wrapper covers every object.
    """
    from repro.workloads.registry import get_workload

    workload = get_workload(plan.workload, **plan.workload_kwargs)
    abft_selections = [s for s in plan.selections if get_scheme(s.scheme).kind == "abft"]
    if abft_selections:
        variant = BESPOKE_ABFT_VARIANTS.get(plan.workload)
        if variant is None:  # pragma: no cover - advisor only offers applicable
            raise ValueError(
                f"plan selects {abft_selections[0].scheme} but workload "
                f"{plan.workload!r} has no bespoke ABFT variant"
            )
        workload = get_workload(variant[0], **plan.workload_kwargs)

    modes = [
        _MODE_BY_SCHEME[s.scheme]
        for s in plan.selections
        if s.scheme in _MODE_BY_SCHEME
    ]
    if modes:
        mode = max(modes, key=lambda m: _MODE_STRENGTH[m])
        workload = DuplicatedWorkload(workload, mode=mode)
    return workload


def measure_overhead(base: Workload, protected: Workload) -> Dict[str, object]:
    """Measured golden-run op counts of base vs protected variants.

    Runs both through a :class:`~repro.tracing.sinks.CountingSink` (no
    event materialisation) and reports the extra-op delta the cost models
    predict.  Also checks that the protected golden outputs are
    bit-identical to the baseline's — a protection transform must be a
    no-op on fault-free executions.
    """
    import numpy as np

    base_sink, protected_sink = CountingSink(), CountingSink()
    base_outcome = base.golden_run(sink=base_sink)
    protected_outcome = protected.golden_run(sink=protected_sink)
    outputs_identical = all(
        np.array_equal(
            base_outcome.outputs[name], protected_outcome.outputs[name]
        )
        for name in base.output_objects
    )
    # Return values only have to agree when both variants treat them as
    # application output (bespoke ABFT kernels return a bookkeeping
    # correction count and declare check_return_value=False).
    if base.check_return_value and protected.check_return_value:
        outputs_identical = outputs_identical and (
            base_outcome.return_value == protected_outcome.return_value
        )
    return {
        "base_ops": base_sink.total,
        "protected_ops": protected_sink.total,
        "extra_ops": protected_sink.total - base_sink.total,
        "overhead_ratio": (
            (protected_sink.total - base_sink.total) / base_sink.total
            if base_sink.total
            else 0.0
        ),
        "outputs_identical": outputs_identical,
    }
