"""``python -m repro protect`` — the selective-protection command line.

Subcommands (registered into the main ``repro`` parser by
:mod:`repro.campaigns.cli`)::

    repro protect plan WORKLOAD [--budget B] [options]   advise under a budget
    repro protect apply TARGET                           build + measure variant
    repro protect validate TARGET [--tests N]            closed-loop campaigns
    repro protect report [TARGET]                        render from the store

``TARGET`` is a plan id (``p0123abcd…`` as printed by ``plan``) or a
workload name, which resolves to that workload's most recent plan in the
store.  The store location comes from ``--store`` / ``REPRO_STORE`` exactly
like the campaign commands; all four verbs share one v3 SQLite file with
the campaign subsystem.

``plan`` consumes aDVF reports: live ones computed by the
:class:`~repro.core.advf.AdvfEngine` (the default) or rows persisted by a
previous campaign (``--campaign CAMPAIGN_ID``).
"""

from __future__ import annotations

import argparse
from typing import Dict, Optional

from repro.core.advf import AdvfEngine, AnalysisConfig
from repro.core.patterns import SingleBitModel
from repro.protection.advisor import ProtectionAdvisor, ProtectionPlan
from repro.protection.apply import apply_plan, measure_overhead
from repro.protection.schemes import SCHEMES, acquire_trace, get_scheme
from repro.protection.validate import validate_plan
from repro.reporting import (
    format_protection_plan_table,
    format_table,
    format_validation_table,
)
from repro.workloads.registry import get_workload, validate_workload


def register(sub: argparse._SubParsersAction, common) -> None:
    """Attach the ``protect`` command tree to the main parser.

    ``common`` is the campaign CLI's shared option installer (``--store``).
    """
    protect = sub.add_parser(
        "protect", help="aDVF-guided selective protection (plan/apply/validate)"
    )
    psub = protect.add_subparsers(dest="action", required=True)

    plan = psub.add_parser("plan", help="advise protections under a budget")
    plan.add_argument("workload", help="registered workload name")
    plan.add_argument("--budget", type=float, default=2.0,
                      help="max extra ops as a multiple of base ops (default 2.0)")
    plan.add_argument("--objects", default=None,
                      help="comma-separated data objects (default: workload targets)")
    plan.add_argument("--schemes", default=None,
                      help=f"comma-separated scheme subset "
                           f"(default: all of {', '.join(SCHEMES)})")
    plan.add_argument("--method", choices=("auto", "exact", "greedy"),
                      default="auto", help="optimizer (default auto)")
    plan.add_argument("--campaign", default=None, metavar="CAMPAIGN_ID",
                      help="take aDVF reports from this stored campaign "
                           "instead of computing them live")
    plan.add_argument("--max-injections", type=int, default=60,
                      help="injection budget per object for live aDVF reports")
    plan.add_argument("--bit-stride", type=int, default=8,
                      help="bit stride of the live analysis error model")
    plan.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                      help="workload constructor override (repeatable)")
    common(plan)

    for name, help_text in (
        ("apply", "instantiate the protected variant and measure its overhead"),
        ("validate", "run the closed-loop injection campaigns"),
    ):
        p = psub.add_parser(name, help=help_text)
        p.add_argument("target", help="plan id, or workload name (latest plan)")
        if name == "validate":
            p.add_argument("--tests", type=int, default=40,
                           help="max injections per object and variant")
            p.add_argument("--bit-stride", type=int, default=8,
                           help="bit stride of the site enumeration")
            p.add_argument("--workers", type=int, default=None,
                           help="worker processes for the validation "
                                "campaigns (default: $REPRO_WORKERS or "
                                "cores-1)")
            p.add_argument("--max-shards", type=int, default=None,
                           help="execute at most N shards per variant this "
                                "run (smoke/interrupt; resume by re-running)")
            p.add_argument("--shard-size", type=int, default=None,
                           help="specs per validation shard (checkpoint "
                                "granularity; default as campaign run)")
        common(p)

    report = psub.add_parser("report", help="plan + residual tables from the store")
    report.add_argument("target", nargs="?", default=None,
                        help="plan id or workload name; omit to list all plans")
    common(report)


# --------------------------------------------------------------------- #
# target resolution
# --------------------------------------------------------------------- #
def _resolve_plan(store, target: str) -> ProtectionPlan:
    """TARGET → plan: a stored plan id verbatim, or a workload's latest."""
    if store.has_protection_plan(target):
        return ProtectionPlan.from_dict(store.protection_plan(target).plan)
    try:
        workload = validate_workload(target)
    except KeyError:
        raise SystemExit(
            f"{target!r} is neither a protection plan id in {store.path!r} "
            f"nor a known workload"
        ) from None
    records = store.protection_plans(workload=workload)
    if not records:
        raise SystemExit(
            f"no protection plans for workload {workload!r} in {store.path!r}; "
            f"run `repro protect plan {workload}` first"
        )
    return ProtectionPlan.from_dict(records[-1].plan)


# --------------------------------------------------------------------- #
# subcommand implementations
# --------------------------------------------------------------------- #
def cmd_plan(args, open_store, parse_set, say) -> int:
    try:
        workload_name = validate_workload(args.workload)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None
    kwargs = parse_set(args.set)
    workload = get_workload(workload_name, **kwargs)
    objects = (
        [part.strip() for part in args.objects.split(",") if part.strip()]
        if args.objects
        else list(workload.target_objects)
    )
    known = {obj.name for obj in workload.fresh_instance().memory.data_objects()}
    unknown = [name for name in objects if name not in known]
    if unknown:
        raise SystemExit(
            f"unknown data object(s) {', '.join(unknown)} for workload "
            f"{workload_name!r}; available: {', '.join(sorted(known))}"
        )
    schemes = (
        [part.strip() for part in args.schemes.split(",") if part.strip()]
        if args.schemes
        else None
    )
    if schemes:
        try:
            schemes = [get_scheme(name).name for name in schemes]
        except KeyError as exc:
            raise SystemExit(str(exc).strip('"')) from None

    with open_store(args) as store:
        if args.campaign:
            if not store.has_campaign(args.campaign):
                raise SystemExit(
                    f"no campaign {args.campaign!r} in {store.path!r}"
                )
            record = store.campaign(args.campaign)
            # The campaign's measurements only commute with the advisor's
            # cost inputs when workload identity (name + kwargs) matches.
            if record.workload != workload_name:
                raise SystemExit(
                    f"campaign {args.campaign} measured workload "
                    f"{record.workload!r}, not {workload_name!r}"
                )
            if kwargs and kwargs != record.workload_kwargs:
                raise SystemExit(
                    f"campaign {args.campaign} ran with kwargs "
                    f"{record.workload_kwargs}, but --set gave {kwargs}; "
                    f"drop --set to adopt the campaign's kwargs"
                )
            if not kwargs and record.workload_kwargs:
                kwargs = dict(record.workload_kwargs)
                workload = get_workload(workload_name, **kwargs)
            reports = store.reports(args.campaign)
            missing = [name for name in objects if name not in reports]
            if missing:
                raise SystemExit(
                    f"campaign {args.campaign} has no stored aDVF reports for "
                    f"{', '.join(missing)}; run `repro campaign report` first"
                )
            reports = {name: reports[name] for name in objects}
            trace = acquire_trace(workload, workload_name, kwargs)
        else:
            say(f"computing aDVF reports for {', '.join(objects)} ...")
            engine = AdvfEngine(
                workload,
                AnalysisConfig(
                    max_injections=args.max_injections,
                    error_model=SingleBitModel(bit_stride=args.bit_stride),
                    equivalence_samples=1,
                    injection_samples_per_class=1,
                ),
            )
            reports = {name: engine.analyze_object(name) for name in objects}
            trace = engine.trace

        advisor = ProtectionAdvisor(
            workload, trace, workload_kwargs=kwargs, schemes=schemes
        )
        plan = advisor.advise(reports, budget=args.budget, method=args.method)
        store.save_protection_plan(
            plan.plan_id, plan.workload, plan.workload_kwargs, plan.budget,
            plan.to_dict(),
        )
        print(f"plan {plan.plan_id} ({plan.method}): "
              f"{len(plan.selections)} object(s) protected")
        print()
        print(format_protection_plan_table(plan.to_dict()))
    return 0


def cmd_apply(args, open_store, say) -> int:
    with open_store(args) as store:
        plan = _resolve_plan(store, args.target)
        say(f"applying plan {plan.plan_id} ({plan.workload}) ...")
        protected = apply_plan(plan)
        baseline = get_workload(plan.workload, **plan.workload_kwargs)
        measured = measure_overhead(baseline, protected)
        print(f"plan {plan.plan_id}: protected variant {protected.name!r}")
        print(
            f"measured overhead: {measured['extra_ops']} extra ops "
            f"({measured['overhead_ratio']:.2f}x of {measured['base_ops']}), "
            f"predicted {plan.predicted_extra_ops} "
            f"({plan.predicted_overhead:.2f}x)"
        )
        if not measured["outputs_identical"]:
            print("WARNING: protected golden outputs differ from the baseline; "
                  "plan left unapplied")
            return 1
        store.set_plan_status(plan.plan_id, "applied")
        print("golden outputs: bit-identical to the baseline")
    return 0


def cmd_validate(args, open_store, say) -> int:
    with open_store(args) as store:
        plan = _resolve_plan(store, args.target)
        say(f"validating plan {plan.plan_id} "
            f"({len(plan.protected_objects())} object(s)) ...")
        extra = (
            {"shard_size": args.shard_size}
            if args.shard_size is not None
            else {}
        )
        # No explicit progress callback: the validation orchestrators emit
        # their own progress lines through the structured campaign logger.
        report = validate_plan(
            plan,
            store=store,
            bit_stride=args.bit_stride,
            max_tests=args.tests,
            workers=args.workers,
            max_shards=args.max_shards,
            **extra,
        )
        if not report.complete:
            print(f"plan {plan.plan_id}: validation interrupted "
                  f"(--max-shards); re-run `repro protect validate` to "
                  f"resume from the persisted shards")
            return 0
        print(f"plan {plan.plan_id}: validation complete")
        print()
        print(_validation_table(store, plan.plan_id))
    return 0


def cmd_report(args, open_store) -> int:
    with open_store(args) as store:
        if args.target is None:
            records = store.protection_plans()
            if not records:
                print(f"no protection plans in {store.path!r}")
                return 0
            print(
                format_table(
                    ["plan", "workload", "budget", "status", "objects"],
                    [
                        [
                            record.plan_id,
                            record.workload,
                            f"{record.budget:g}x",
                            record.status,
                            ", ".join(
                                s["object_name"]
                                for s in record.plan.get("selections", [])
                            ),
                        ]
                        for record in records
                    ],
                )
            )
            return 0
        plan = _resolve_plan(store, args.target)
        record = store.protection_plan(plan.plan_id)
        print(f"plan     : {plan.plan_id}")
        print(f"workload : {record.workload} {record.workload_kwargs or ''}".rstrip())
        print(f"status   : {record.status}")
        print()
        print(format_protection_plan_table(record.plan))
        runs = store.validation_runs(plan.plan_id)
        if runs:
            print()
            print(_validation_table(store, plan.plan_id))
        else:
            print()
            print("no validation runs yet; run `repro protect validate` "
                  "to close the loop")
    return 0


def _validation_table(store, plan_id: str) -> str:
    return format_validation_table(
        [
            {
                "object": run.object_name,
                "scheme": run.scheme,
                "variant": run.variant,
                "tests": run.tests,
                "successes": run.successes,
            }
            for run in store.validation_runs(plan_id)
        ]
    )


def dispatch(args, open_store, parse_set, say) -> int:
    """Route a parsed ``protect`` command (called from the main CLI)."""
    if args.action == "plan":
        return cmd_plan(args, open_store, parse_set, say)
    if args.action == "apply":
        return cmd_apply(args, open_store, say)
    if args.action == "validate":
        return cmd_validate(args, open_store, say)
    return cmd_report(args, open_store)
