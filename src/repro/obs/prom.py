"""Prometheus textfile rendering of metric snapshots.

``render_promfile`` turns a :meth:`~repro.obs.metrics.MetricsRegistry.to_dict`
snapshot (live or store-persisted) into the node-exporter *textfile
collector* format — the seed of the future campaign fabric's scrape
surface: ``python -m repro stats CAMPAIGN --promfile FILE`` drops the
campaign's merged metrics where a node exporter (or plain ``curl`` +
``promtool``) can pick them up.

Names are prefixed ``repro_`` with dots mapped to underscores; histograms
render the conventional ``_bucket``/``_sum``/``_count`` triplet with
cumulative ``le`` buckets.  Output ordering is deterministic (sorted by
series), so repeated exports of the same snapshot are byte-identical.
"""

from __future__ import annotations

import re
from typing import Dict, IO, List

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: object) -> str:
    number = float(value)
    if number == int(number):
        return str(int(number))
    return repr(number)


def render_promfile(snapshot: Dict[str, object]) -> str:
    """The snapshot as Prometheus text exposition format."""
    lines: List[str] = []
    typed: Dict[str, str] = {}

    def emit(name: str, kind: str, label_str: str, value: object) -> None:
        if typed.get(name) != kind:
            typed[name] = kind
            lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name}{label_str} {_format_value(value)}")

    for entry in snapshot.get("counters", ()):  # type: ignore[union-attr]
        emit(
            _prom_name(entry["name"]), "counter",
            _labels(entry["labels"]), entry["value"],
        )
    for entry in snapshot.get("gauges", ()):  # type: ignore[union-attr]
        emit(
            _prom_name(entry["name"]), "gauge",
            _labels(entry["labels"]), entry["value"],
        )
    for entry in snapshot.get("histograms", ()):  # type: ignore[union-attr]
        name = _prom_name(entry["name"])
        if typed.get(name) != "histogram":
            typed[name] = "histogram"
            lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, count in zip(entry["bounds"], entry["bucket_counts"]):
            cumulative += count
            le = 'le="%g"' % bound
            lines.append(f"{name}_bucket{_labels(entry['labels'], le)} {cumulative}")
        inf = 'le="+Inf"'
        lines.append(
            f"{name}_bucket{_labels(entry['labels'], inf)} "
            f"{_format_value(entry['count'])}"
        )
        lines.append(
            f"{name}_sum{_labels(entry['labels'])} {_format_value(entry['sum'])}"
        )
        lines.append(
            f"{name}_count{_labels(entry['labels'])} "
            f"{_format_value(entry['count'])}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def write_promfile(snapshot: Dict[str, object], fh: IO[str]) -> int:
    """Write the rendered snapshot to ``fh``; returns the line count."""
    text = render_promfile(snapshot)
    fh.write(text)
    return text.count("\n")
