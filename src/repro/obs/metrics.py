"""Process-wide metrics registry: counters, gauges, histograms.

One uniform, serializable, *mergeable* accounting surface for the whole
stack — engine dispatch counts, replay-batch scheduling, cache hit rates,
campaign progress — replacing the scattered ad-hoc counters that grew per
subsystem.  Three design points drive the shape:

* **Deterministic merge.**  Worker processes record into their own
  process-local registry and ship :meth:`MetricsRegistry.snapshot_delta`
  payloads back to the parent, which folds them in with
  :meth:`MetricsRegistry.merge`.  Counters add, gauges take the maximum,
  histogram buckets add element-wise — all associative and commutative, so
  the fold result is independent of worker completion order (asserted by
  the test suite).  Histogram *sums* are kept as exact compensated-sum
  expansions (Shewchuk partials, the full generalisation of
  Neumaier/Kahan summation) and serialized in a canonical form, so even
  the float sums are bit-identical across fold orders.
* **Fixed bucket bounds.**  Histograms carry an explicit, immutable bound
  tuple chosen at first observation (default: :data:`TIME_BUCKETS`).
  Merging rejects mismatched bounds instead of resampling, so merged
  distributions are exact, not approximations.
* **No-op mode.**  ``REPRO_METRICS=0`` swaps the registry for a
  :class:`NullRegistry` whose mutators do nothing, keeping the engine's
  hot paths at their uninstrumented speed (``benchmarks/bench_obs.py``
  holds the instrumented overhead itself to a few percent).

Metric names are dotted lowercase (``engine.segment_ops``); labels are
keyword arguments (``workload="matmul"``, ``backend="block"``).  The
serialized form (:meth:`MetricsRegistry.to_dict`) is plain JSON: sorted
lists of ``{"name", "labels", "value"}`` entries, stable across processes
and runs with identical activity.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Dict, Iterable, List, Optional, Tuple

#: Default histogram bounds (seconds): ~100µs .. ~100s, log-spaced.  Fixed
#: and deterministic so histograms recorded by different processes merge
#: bucket-for-bucket.
TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)

#: ``REPRO_METRICS`` values that disable the registry.
_DISABLED = frozenset({"0", "off", "false", "none", "disabled"})

#: Label key/value pairs, sorted — the canonical identity of a series.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


# --------------------------------------------------------------------- #
# exact float accumulation (compensated summation, taken to its limit)
# --------------------------------------------------------------------- #
def _exact_add(partials: List[float], value: float) -> None:
    """Accumulate ``value`` into a non-overlapping partials expansion.

    Shewchuk's grow-expansion (the algorithm behind ``math.fsum``): the
    list always represents the *exact* real-number sum of everything
    accumulated so far, so addition is genuinely associative and
    commutative — the property plain floats (and two-term Neumaier/Kahan
    compensation) only approximate.
    """
    x = value
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


def _canonical_partials(partials: List[float]) -> List[float]:
    """The unique round-and-subtract expansion of an exact sum.

    Two partials lists representing the same exact value can differ
    term-by-term depending on accumulation history; peeling off the
    correctly-rounded total (``math.fsum``) and exactly subtracting it
    until nothing remains yields a canonical form, so serialized
    snapshots of equal sums are bit-identical.
    """
    out: List[float] = []
    rest = list(partials)
    for _ in range(64):  # terminates in 2-3 rounds; bound is paranoia
        total = math.fsum(rest)
        if total == 0.0:
            break
        out.append(total)
        _exact_add(rest, -total)
    return out


class Histogram:
    """Fixed-bound histogram: per-bucket counts plus running count/sum.

    The running sum is an exact compensated expansion (see
    :func:`_exact_add`), so merged histograms report bit-identical sums
    regardless of observation or merge order.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "_sum_partials")

    def __init__(self, bounds: Tuple[float, ...] = TIME_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        #: One count per bound, plus the trailing +Inf bucket.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self._sum_partials: List[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        _exact_add(self._sum_partials, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def sum(self) -> float:
        """Correctly-rounded total of every observation."""
        return math.fsum(self._sum_partials)

    def sum_partials(self) -> List[float]:
        """The canonical exact-sum expansion (JSON-safe)."""
        return _canonical_partials(self._sum_partials)

    def merge_sum(self, partials: Iterable[float]) -> None:
        """Exactly fold another histogram's sum expansion into this one."""
        for part in partials:
            _exact_add(self._sum_partials, part)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Thread-safe, label-aware metric store with merge and delta support."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelKey], float] = {}
        self._gauges: Dict[Tuple[str, LabelKey], float] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}
        #: Named snapshot cursors for :meth:`snapshot_delta`.
        self._cursors: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def inc(self, name: str, amount: float = 1, **labels: object) -> None:
        """Add ``amount`` to the counter series ``name`` + ``labels``."""
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge series to ``value`` (merge semantics: max)."""
        key = (name, _label_key(labels))
        with self._lock:
            self._gauges[key] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: Tuple[float, ...] = TIME_BUCKETS,
        **labels: object,
    ) -> None:
        """Record ``value`` into the histogram series ``name`` + ``labels``."""
        key = (name, _label_key(labels))
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram(buckets)
            hist.observe(value)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def counter_value(self, name: str, **labels: object) -> float:
        return self._counters.get((name, _label_key(labels)), 0)

    def gauge_value(self, name: str, **labels: object) -> Optional[float]:
        return self._gauges.get((name, _label_key(labels)))

    def histogram(self, name: str, **labels: object) -> Optional[Histogram]:
        return self._histograms.get((name, _label_key(labels)))

    def counter_total(self, name: str) -> float:
        """Sum of the named counter over every label combination."""
        return sum(v for (n, _), v in self._counters.items() if n == name)

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot, deterministically ordered."""
        with self._lock:
            counters = [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self._counters.items())
            ]
            gauges = [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self._gauges.items())
            ]
            histograms = [
                {
                    "name": name,
                    "labels": dict(labels),
                    "bounds": list(hist.bounds),
                    "bucket_counts": list(hist.bucket_counts),
                    "count": hist.count,
                    "sum": hist.sum,
                    "sum_partials": hist.sum_partials(),
                }
                for (name, labels), hist in sorted(self._histograms.items())
            ]
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold a :meth:`to_dict`-shaped snapshot into this registry.

        Counters add, gauges keep the maximum, histogram buckets add
        element-wise — all associative/commutative, so folding worker
        snapshots in any completion order yields identical state
        (including the histogram float sums, which merge through exact
        compensated expansions; snapshots written before the expansions
        existed fold their rounded ``sum`` instead).
        """
        for entry in snapshot.get("counters", ()):  # type: ignore[union-attr]
            key = (entry["name"], _label_key(entry["labels"]))
            with self._lock:
                self._counters[key] = self._counters.get(key, 0) + entry["value"]
        for entry in snapshot.get("gauges", ()):  # type: ignore[union-attr]
            key = (entry["name"], _label_key(entry["labels"]))
            with self._lock:
                existing = self._gauges.get(key)
                value = entry["value"]
                self._gauges[key] = (
                    value if existing is None else max(existing, value)
                )
        for entry in snapshot.get("histograms", ()):  # type: ignore[union-attr]
            key = (entry["name"], _label_key(entry["labels"]))
            bounds = tuple(entry["bounds"])
            with self._lock:
                hist = self._histograms.get(key)
                if hist is None:
                    hist = self._histograms[key] = Histogram(bounds)
                if hist.bounds != bounds:
                    raise ValueError(
                        f"histogram {entry['name']!r} bucket bounds differ: "
                        f"{hist.bounds} != {bounds}"
                    )
                for i, count in enumerate(entry["bucket_counts"]):
                    hist.bucket_counts[i] += count
                hist.count += entry["count"]
                partials = entry.get("sum_partials")
                if partials is None:  # pre-expansion snapshot: rounded sum
                    partials = [entry["sum"]] if entry["sum"] else []
                hist.merge_sum(partials)

    def snapshot_delta(self, cursor: str) -> Dict[str, object]:
        """Everything recorded since the previous call with this ``cursor``.

        The first call returns the full current state.  Deltas are
        :meth:`merge`-compatible: merging every delta of a cursor stream
        reconstructs the registry's cumulative state, which is how worker
        processes ship per-chunk metrics to the parent and how the
        orchestrator scopes per-run metrics for the store.  (Gauges are
        carried at their current value — max-merge makes that idempotent.)
        """
        current = self.to_dict()
        previous = self._cursors.get(cursor)
        self._cursors[cursor] = current
        if previous is None:
            return current
        return diff_snapshots(previous, current)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._cursors.clear()


class NullRegistry(MetricsRegistry):
    """The ``REPRO_METRICS=0`` registry: every mutator is a no-op."""

    enabled = False

    def inc(self, name, amount=1, **labels):  # noqa: D102
        pass

    def gauge(self, name, value, **labels):  # noqa: D102
        pass

    def observe(self, name, value, buckets=TIME_BUCKETS, **labels):  # noqa: D102
        pass

    def merge(self, snapshot):  # noqa: D102 - folds are dropped too
        pass


# --------------------------------------------------------------------- #
# snapshot algebra (plain dicts, usable store-side without a registry)
# --------------------------------------------------------------------- #
def merge_snapshots(*snapshots: Dict[str, object]) -> Dict[str, object]:
    """Merge :meth:`MetricsRegistry.to_dict` payloads into one.

    Pure-dict fold with the registry's merge semantics — the store and CLI
    use it to combine persisted per-run snapshots without touching the
    live process registry.
    """
    acc = MetricsRegistry()
    for snapshot in snapshots:
        acc.merge(snapshot)
    return acc.to_dict()


def diff_snapshots(
    before: Dict[str, object], after: Dict[str, object]
) -> Dict[str, object]:
    """The activity between two snapshots (``after - before``).

    Counters and histogram buckets subtract; gauges pass through at their
    ``after`` value.  Series absent from ``before`` appear whole; series
    whose value did not change are dropped.
    """

    def index(entries: Iterable[Dict[str, object]]):
        return {
            (e["name"], _label_key(e["labels"])): e for e in entries
        }

    counters: List[Dict[str, object]] = []
    before_counters = index(before.get("counters", ()))
    for entry in after.get("counters", ()):  # type: ignore[union-attr]
        key = (entry["name"], _label_key(entry["labels"]))
        prior = before_counters.get(key)
        delta = entry["value"] - (prior["value"] if prior else 0)
        if delta:
            counters.append(
                {"name": entry["name"], "labels": dict(entry["labels"]),
                 "value": delta}
            )
    gauges = [
        {"name": e["name"], "labels": dict(e["labels"]), "value": e["value"]}
        for e in after.get("gauges", ())  # type: ignore[union-attr]
    ]
    histograms: List[Dict[str, object]] = []
    before_hists = index(before.get("histograms", ()))
    for entry in after.get("histograms", ()):  # type: ignore[union-attr]
        key = (entry["name"], _label_key(entry["labels"]))
        prior = before_hists.get(key)
        if prior is None:
            histograms.append(entry)
            continue
        count = entry["count"] - prior["count"]
        if not count:
            continue
        delta_hist = {
            "name": entry["name"],
            "labels": dict(entry["labels"]),
            "bounds": list(entry["bounds"]),
            "bucket_counts": [
                a - b
                for a, b in zip(entry["bucket_counts"], prior["bucket_counts"])
            ],
            "count": count,
        }
        after_parts = entry.get("sum_partials")
        before_parts = prior.get("sum_partials")
        if after_parts is not None and before_parts is not None:
            # exact subtraction, so merging a cursor's delta stream
            # reconstructs the cumulative sums bit-identically
            rest = list(after_parts)
            for part in before_parts:
                _exact_add(rest, -part)
            delta_parts = _canonical_partials(rest)
            delta_hist["sum"] = math.fsum(delta_parts)
            delta_hist["sum_partials"] = delta_parts
        else:
            delta_hist["sum"] = entry["sum"] - prior["sum"]
        histograms.append(delta_hist)
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


# --------------------------------------------------------------------- #
# the process-wide registry
# --------------------------------------------------------------------- #
def _env_enabled() -> bool:
    raw = os.environ.get("REPRO_METRICS")
    if raw is None:
        return True
    return raw.strip().lower() not in _DISABLED


_REGISTRY: MetricsRegistry = (
    MetricsRegistry() if _env_enabled() else NullRegistry()
)


def registry() -> MetricsRegistry:
    """The process-wide registry (a :class:`NullRegistry` when disabled)."""
    return _REGISTRY


def metrics_enabled() -> bool:
    """Whether the process-wide registry records anything."""
    return _REGISTRY.enabled


def configure(enabled: Optional[bool] = None) -> MetricsRegistry:
    """(Re)initialise the process-wide registry.

    ``enabled=None`` re-reads ``REPRO_METRICS``; booleans override the
    environment.  Always installs a *fresh* registry — the test suite's
    isolation hook, also usable to scope a measurement.
    """
    global _REGISTRY
    if enabled is None:
        enabled = _env_enabled()
    _REGISTRY = MetricsRegistry() if enabled else NullRegistry()
    return _REGISTRY
