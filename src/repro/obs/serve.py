"""Live observability endpoint: ``python -m repro obs serve``.

A threaded stdlib :mod:`http.server` (no third-party dependencies)
exposing the process's telemetry — and, when a store path is configured,
the durable campaign state — over four routes:

``/healthz``
    Liveness JSON: status, pid, uptime, repro/store versions.
``/metrics``
    Prometheus text exposition (the :mod:`repro.obs.prom` renderer) of
    the *live* process registry; ``/metrics?campaign=ID`` renders the
    store-persisted merged metrics of one campaign instead, so a
    standalone ``obs serve --store`` process is a scrape target for
    campaigns that already finished.
``/campaigns``
    JSON summaries of every campaign in the store (id, workload, plan,
    status, shard/injection progress).
``/events``
    Server-Sent Events: every structured log/span event the process
    emits (the :func:`repro.obs.log.add_event_sink` hook), preceded by a
    ``hello`` event carrying provenance — a browser ``EventSource`` or
    ``curl -N`` watches a running campaign live.

``campaign run --serve PORT`` (or ``REPRO_OBS_PORT``) starts the same
server in-process next to the orchestrator, so a *running* campaign is
observable mid-flight; the store-backed routes then serve the very store
the campaign is writing.  Server threads only ever *read* the live
registry (its lock serialises against recording) and open their own
short-lived store connections, so serving never perturbs the campaign.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional
from urllib.parse import parse_qs, urlparse

from repro.obs.log import add_event_sink, provenance, remove_event_sink
from repro.obs.metrics import registry
from repro.obs.prom import render_promfile

#: Default port of ``repro obs serve`` (overridden by ``REPRO_OBS_PORT``).
DEFAULT_PORT = 9208

#: Per-subscriber SSE queue depth; a stalled client drops events rather
#: than blocking the emitting thread.
_QUEUE_DEPTH = 256


class EventBus:
    """Fan structured events out to any number of SSE subscribers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subscribers: List["queue.Queue[Dict[str, object]]"] = []

    def publish(self, event: Dict[str, object]) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
        for q in subscribers:
            try:
                q.put_nowait(event)
            except queue.Full:  # slow client: drop, never block
                pass

    def subscribe(self) -> "queue.Queue[Dict[str, object]]":
        q: "queue.Queue[Dict[str, object]]" = queue.Queue(_QUEUE_DEPTH)
        with self._lock:
            self._subscribers.append(q)
        return q

    def unsubscribe(self, q: "queue.Queue[Dict[str, object]]") -> None:
        with self._lock:
            if q in self._subscribers:
                self._subscribers.remove(q)

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs"
    #: The owning :class:`ObsServer` (set on the server object).
    obs: "ObsServer"

    def log_message(self, fmt, *args):  # noqa: D102 - silence per-request lines
        pass

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        obs = self.server.obs  # type: ignore[attr-defined]
        try:
            if route in ("/", "/healthz"):
                self._send_json(200, obs.health())
            elif route == "/metrics":
                query = parse_qs(parsed.query)
                campaign = (query.get("campaign") or [None])[0]
                self._send_text(
                    200, obs.metrics_text(campaign),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif route == "/campaigns":
                self._send_json(200, obs.campaign_summaries())
            elif route == "/events":
                self._serve_events(obs)
            else:
                self._send_json(404, {"error": f"no route {route!r}"})
        except BrokenPipeError:
            pass
        except KeyError as exc:
            self._send_json(404, {"error": str(exc)})
        except RuntimeError as exc:
            self._send_json(503, {"error": str(exc)})

    # ------------------------------------------------------------------ #
    def _send_text(self, code: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload: object) -> None:
        self._send_text(
            code, json.dumps(payload, indent=2, sort_keys=True) + "\n",
            "application/json; charset=utf-8",
        )

    def _serve_events(self, obs: "ObsServer") -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        q = obs.bus.subscribe()
        try:
            self._write_sse("hello", obs.health())
            while not obs.stopping.is_set():
                try:
                    event = q.get(timeout=1.0)
                except queue.Empty:
                    # comment line = keep-alive; also surfaces dead clients
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    continue
                self._write_sse(str(event.get("type", "event")), event)
        except (BrokenPipeError, ConnectionResetError):
            pass
        finally:
            obs.bus.unsubscribe(q)

    def _write_sse(self, event_name: str, payload: object) -> None:
        data = json.dumps(payload, sort_keys=True, default=repr)
        self.wfile.write(
            f"event: {event_name}\ndata: {data}\n\n".encode("utf-8")
        )
        self.wfile.flush()


class ObsServer:
    """The observability HTTP server (threaded, stdlib-only).

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).  ``store_path`` enables the store-backed routes; the
    live registry is always served.  While running, the server is
    registered as an event sink, so every structured log/span event the
    process emits streams to SSE subscribers.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        store_path: Optional[str] = None,
    ) -> None:
        self.host = host
        self.requested_port = port
        self.store_path = store_path
        self.bus = EventBus()
        self.stopping = threading.Event()
        self.started_at = time.time()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ObsServer":
        if self._httpd is not None:
            return self
        self._httpd = ThreadingHTTPServer(
            (self.host, self.requested_port), _Handler
        )
        self._httpd.daemon_threads = True
        self._httpd.obs = self  # type: ignore[attr-defined]
        self.started_at = time.time()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-serve",
            daemon=True,
        )
        self._thread.start()
        add_event_sink(self.bus.publish)
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self.stopping.set()
        remove_event_sink(self.bus.publish)
        self._httpd.shutdown()
        self._httpd.server_close()
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self.requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    # route payloads (handler threads call these)
    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, object]:
        import os

        payload: Dict[str, object] = {
            "status": "ok",
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self.started_at, 3),
            "store": self.store_path,
            "sse_subscribers": self.bus.subscriber_count,
        }
        payload.update(provenance())
        return payload

    def metrics_text(self, campaign_id: Optional[str] = None) -> str:
        if campaign_id is None:
            return render_promfile(registry().to_dict())
        with self._open_store() as store:
            if not store.has_campaign(campaign_id):
                raise KeyError(f"no campaign {campaign_id!r} in the store")
            return render_promfile(store.campaign_metrics(campaign_id))

    def campaign_summaries(self) -> List[Dict[str, object]]:
        from repro.campaigns.plans import plan_from_dict

        with self._open_store() as store:
            summaries = []
            for record in store.campaigns():
                status = store.status(record.campaign_id)
                summaries.append(
                    {
                        "campaign_id": record.campaign_id,
                        "workload": record.workload,
                        "workload_kwargs": record.workload_kwargs,
                        "plan": plan_from_dict(record.plan).describe(),
                        "status": record.status,
                        "shards_done": status.shards_done,
                        "injections_done": status.injections_done,
                        "runs": len(status.runs),
                        "repro_version": record.repro_version,
                    }
                )
            return summaries

    def _open_store(self):
        from repro.campaigns.store import CampaignStore

        if self.store_path is None:
            raise RuntimeError(
                "no store configured (pass --store to `repro obs serve`)"
            )
        # one short-lived connection per request: sqlite connections are
        # not shareable across the handler threads
        return CampaignStore(self.store_path)
