"""Lightweight span tracing: ``with span("replay.batch", shard=k): ...``.

A span measures one timed region on the monotonic clock (plus a
wall-clock start stamp so spans from different processes can be laid on
one timeline).  Spans nest via a thread-local stack — each records its
parent's name and its own depth — and are exported three ways on exit:

* a ``span_seconds`` histogram observation in the metrics registry
  (labelled ``span=<name>`` plus the caller's labels), so durations are
  mergeable across worker processes like every other metric;
* a flat ``{"type": "span", ...}`` JSONL event via ``REPRO_LOG`` (see
  :mod:`repro.obs.log`), the diffable event-log form;
* when recording is enabled (:func:`enable_recording`), a finished-span
  *record* in a per-process buffer — the campaign flight recorder.
  Worker processes drain the buffer per chunk
  (:func:`drain_span_records`) and ship the records to the orchestrator
  alongside their metric deltas; the orchestrator persists them into the
  store's ``run_spans`` table for ``python -m repro timeline``.

Correlation IDs come from the process-wide *span context*
(:func:`set_span_context` / :func:`span_context`): stable labels such as
``campaign`` / ``run`` / ``shard`` stamped onto every record exported
while the context is active, plus the recording process's pid.

Overhead off the hot path is two ``monotonic()`` calls, one ``time()``
call and a dict update; with ``REPRO_METRICS=0``, ``REPRO_LOG`` unset
and recording off, exit does nothing but pop the stack.  Spans are
deliberately *not* placed inside the engine's dispatch loop — engine
activity is counted, not span-timed.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.obs.log import emit_event, events_active
from repro.obs.metrics import registry

_stack = threading.local()

#: Process-wide correlation labels stamped onto every span record (and
#: inherited by fork-started worker processes, which is exactly right for
#: campaign/run ids).  Mutated only via :func:`set_span_context`.
_context: Dict[str, str] = {}

#: Finished-span record buffer (``None`` = recording disabled).  Bounded:
#: a runaway producer drops the *oldest* records rather than growing
#: without limit — the recorder is a flight recorder, not an archive.
_records: Optional[List[Dict[str, object]]] = None
_RECORD_CAP = 100_000


def _frames() -> list:
    frames = getattr(_stack, "frames", None)
    if frames is None:
        frames = _stack.frames = []
    return frames


# --------------------------------------------------------------------- #
# correlation context
# --------------------------------------------------------------------- #
def set_span_context(**labels: object) -> None:
    """Merge correlation labels into the process-wide span context.

    ``None`` values remove the key.  Labels are stringified, mirroring
    span labels.
    """
    for key, value in labels.items():
        if value is None:
            _context.pop(key, None)
        else:
            _context[key] = str(value)


def clear_span_context() -> None:
    """Drop every correlation label (test hook / campaign teardown)."""
    _context.clear()


def get_span_context() -> Dict[str, str]:
    """A copy of the active correlation labels."""
    return dict(_context)


@contextmanager
def span_context(**labels: object) -> Iterator[None]:
    """Scope correlation labels: set on entry, restore prior on exit."""
    previous = {key: _context.get(key) for key in labels}
    set_span_context(**labels)
    try:
        yield
    finally:
        set_span_context(**previous)


# --------------------------------------------------------------------- #
# flight recording
# --------------------------------------------------------------------- #
def enable_recording() -> None:
    """Start buffering finished-span records in this process."""
    global _records
    if _records is None:
        _records = []


def disable_recording() -> None:
    """Stop buffering and drop any unfetched records."""
    global _records
    _records = None


def recording_enabled() -> bool:
    return _records is not None


def drain_span_records() -> List[Dict[str, object]]:
    """Return (and clear) the finished-span records buffered so far.

    Worker processes call this per chunk and ship the records to the
    parent; the orchestrator calls it per shard / per run to persist its
    own process's spans.  Returns ``[]`` when recording is disabled.
    """
    global _records
    if not _records:
        return []
    drained, _records = _records, []
    return drained


def _record(entry: "Span") -> None:
    assert _records is not None
    if len(_records) >= _RECORD_CAP:
        del _records[0]
    labels = dict(_context)
    labels.update(entry.labels)
    _records.append(
        {
            "name": entry.name,
            "parent": entry.parent,
            "depth": entry.depth,
            "pid": os.getpid(),
            "start_ts": entry.start_ts,
            "duration_s": entry.duration_s,
            "labels": labels,
        }
    )


class Span:
    """One timed region (live inside its ``with`` block, frozen after)."""

    __slots__ = (
        "name", "labels", "parent", "depth", "start_s", "start_ts",
        "duration_s",
    )

    def __init__(self, name: str, labels: Dict[str, object],
                 parent: Optional[str], depth: int) -> None:
        self.name = name
        self.labels = labels
        self.parent = parent
        self.depth = depth
        self.start_s = time.monotonic()
        #: Wall-clock start — the cross-process timeline coordinate.
        self.start_ts = time.time()
        self.duration_s: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        """Flat JSONL-event payload (labels inlined, reserved keys first)."""
        payload: Dict[str, object] = {
            "type": "span",
            "span": self.name,
            "parent": self.parent,
            "depth": self.depth,
            "duration_s": self.duration_s,
        }
        payload.update(_context)
        payload.update(self.labels)
        return payload


def current_span() -> Optional[Span]:
    """The innermost live span of this thread, if any."""
    frames = _frames()
    return frames[-1] if frames else None


@contextmanager
def span(name: str, **labels: object) -> Iterator[Span]:
    """Time a region; export duration as metric + JSONL event on exit.

    The span is exported even when the body raises — the duration then
    covers the partial execution, which is exactly what a timing trace of
    a crashed shard should show.
    """
    frames = _frames()
    parent = frames[-1] if frames else None
    entry = Span(
        name,
        {k: str(v) for k, v in labels.items()},
        parent.name if parent is not None else None,
        len(frames),
    )
    frames.append(entry)
    try:
        yield entry
    finally:
        frames.pop()
        entry.duration_s = time.monotonic() - entry.start_s
        reg = registry()
        if reg.enabled:
            reg.observe("span_seconds", entry.duration_s, span=name, **labels)
        if _records is not None:
            _record(entry)
        if events_active():
            emit_event(entry.to_dict())
