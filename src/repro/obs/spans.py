"""Lightweight span tracing: ``with span("replay.batch", shard=k): ...``.

A span measures one timed region on the monotonic clock.  Spans nest via
a thread-local stack — each records its parent's name and its own depth —
and are exported two ways on exit:

* a ``span_seconds`` histogram observation in the metrics registry
  (labelled ``span=<name>`` plus the caller's labels), so durations are
  mergeable across worker processes like every other metric;
* a flat ``{"type": "span", ...}`` JSONL event via ``REPRO_LOG`` (see
  :mod:`repro.obs.log`), the diffable event-log form.

Overhead off the hot path is two ``monotonic()`` calls and a dict update;
with ``REPRO_METRICS=0`` and ``REPRO_LOG`` unset, exit does nothing but
pop the stack.  Spans are deliberately *not* placed inside the engine's
dispatch loop — engine activity is counted, not span-timed.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs.log import emit_event
from repro.obs.metrics import registry

_stack = threading.local()


def _frames() -> list:
    frames = getattr(_stack, "frames", None)
    if frames is None:
        frames = _stack.frames = []
    return frames


class Span:
    """One timed region (live inside its ``with`` block, frozen after)."""

    __slots__ = ("name", "labels", "parent", "depth", "start_s", "duration_s")

    def __init__(self, name: str, labels: Dict[str, object],
                 parent: Optional[str], depth: int) -> None:
        self.name = name
        self.labels = labels
        self.parent = parent
        self.depth = depth
        self.start_s = time.monotonic()
        self.duration_s: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        """Flat JSONL-event payload (labels inlined, reserved keys first)."""
        payload: Dict[str, object] = {
            "type": "span",
            "span": self.name,
            "parent": self.parent,
            "depth": self.depth,
            "duration_s": self.duration_s,
        }
        payload.update(self.labels)
        return payload


def current_span() -> Optional[Span]:
    """The innermost live span of this thread, if any."""
    frames = _frames()
    return frames[-1] if frames else None


@contextmanager
def span(name: str, **labels: object) -> Iterator[Span]:
    """Time a region; export duration as metric + JSONL event on exit.

    The span is exported even when the body raises — the duration then
    covers the partial execution, which is exactly what a timing trace of
    a crashed shard should show.
    """
    frames = _frames()
    parent = frames[-1] if frames else None
    entry = Span(
        name,
        {k: str(v) for k, v in labels.items()},
        parent.name if parent is not None else None,
        len(frames),
    )
    frames.append(entry)
    try:
        yield entry
    finally:
        frames.pop()
        entry.duration_s = time.monotonic() - entry.start_s
        reg = registry()
        if reg.enabled:
            reg.observe("span_seconds", entry.duration_s, span=name, **labels)
        emit_event(entry.to_dict())
