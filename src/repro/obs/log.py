"""Structured logging: human lines on stderr, JSONL events on ``REPRO_LOG``.

The orchestrator's progress lines (and any other component's) flow through
one logger so verbosity is controlled in one place:

* ``REPRO_LOG_LEVEL`` (``debug`` | ``info`` | ``warning`` | ``error`` |
  ``quiet``; default ``info``) gates the human-readable stderr lines —
  quiet runs and tests stop interleaving progress prints with results;
* ``REPRO_LOG`` names a JSONL file that receives *every* event as one
  structured line regardless of level, stamped with a per-process
  provenance header (repro version + store schema version) so exported
  event logs can be diffed across releases.

Events are flat JSON objects: ``{"type": "log" | "span" | "meta", "ts":
wall-clock seconds, ...}``.  Span events come from
:mod:`repro.obs.spans`; both share the file handle (append mode, one
line per event, lock-serialised within the process — concurrent worker
processes append whole lines, which POSIX keeps intact for the short
lines written here).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Dict, IO, Optional

#: Human-facing level thresholds (a superset of logging's, plus "quiet").
LEVELS: Dict[str, int] = {
    "debug": 10,
    "info": 20,
    "warning": 30,
    "warn": 30,
    "error": 40,
    "quiet": 100,
    "off": 100,
}

_lock = threading.Lock()
_level: Optional[int] = None
_jsonl: Optional[IO[str]] = None
_jsonl_path: Optional[str] = None
_header_written = False


def provenance() -> Dict[str, object]:
    """Version stamp shared by JSONL logs, store exports and bench files."""
    from repro.campaigns.store import SCHEMA_VERSION
    from repro.version import __version__

    return {
        "repro_version": __version__,
        "store_schema_version": SCHEMA_VERSION,
    }


def log_level() -> int:
    """The active stderr threshold (reads ``REPRO_LOG_LEVEL`` once)."""
    global _level
    if _level is None:
        raw = (os.environ.get("REPRO_LOG_LEVEL") or "info").strip().lower()
        try:
            _level = LEVELS.get(raw, None) or int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_LOG_LEVEL must be one of {sorted(set(LEVELS))} or an "
                f"integer, got {raw!r}"
            ) from None
    return _level


def _jsonl_handle() -> Optional[IO[str]]:
    """The ``REPRO_LOG`` append handle (opened lazily, header first)."""
    global _jsonl, _jsonl_path, _header_written
    path = os.environ.get("REPRO_LOG")
    if not path:
        return None
    if _jsonl is None or _jsonl_path != path:
        if _jsonl is not None:
            _jsonl.close()
        _jsonl = open(path, "a", encoding="utf-8")
        _jsonl_path = path
        _header_written = False
    if not _header_written:
        _header_written = True
        header = {"type": "meta", "ts": time.time(), "pid": os.getpid()}
        header.update(provenance())
        _jsonl.write(json.dumps(header, sort_keys=True) + "\n")
        _jsonl.flush()
    return _jsonl


def emit_event(payload: Dict[str, object]) -> None:
    """Append one structured event line to ``REPRO_LOG`` (no-op unset)."""
    with _lock:
        fh = _jsonl_handle()
        if fh is None:
            return
        record = {"ts": time.time()}
        record.update(payload)
        fh.write(json.dumps(record, sort_keys=True, default=repr) + "\n")
        fh.flush()


def reset() -> None:
    """Re-read the environment and drop cached handles (test hook)."""
    global _level, _jsonl, _jsonl_path, _header_written
    with _lock:
        _level = None
        if _jsonl is not None:
            _jsonl.close()
        _jsonl = None
        _jsonl_path = None
        _header_written = False


class StructuredLogger:
    """One component's logging facade.

    ``component`` names the subsystem (``"campaign"``, ``"protect"``) in
    every structured event; the human stderr line is the bare message, so
    existing progress formats — and the greps in CI — are unchanged.
    """

    def __init__(self, component: str) -> None:
        self.component = component

    def log(self, level: str, event: str, message: str = "",
            **fields: object) -> None:
        severity = LEVELS.get(level, 20)
        if severity >= log_level():
            print(message or event, file=sys.stderr)
        payload: Dict[str, object] = {
            "type": "log",
            "level": level,
            "component": self.component,
            "event": event,
        }
        if message:
            payload["message"] = message
        payload.update(fields)
        emit_event(payload)

    def debug(self, event: str, message: str = "", **fields: object) -> None:
        self.log("debug", event, message, **fields)

    def info(self, event: str, message: str = "", **fields: object) -> None:
        self.log("info", event, message, **fields)

    def warning(self, event: str, message: str = "", **fields: object) -> None:
        self.log("warning", event, message, **fields)

    def error(self, event: str, message: str = "", **fields: object) -> None:
        self.log("error", event, message, **fields)


_LOGGERS: Dict[str, StructuredLogger] = {}


def get_logger(component: str) -> StructuredLogger:
    """The (cached) logger of one component."""
    logger = _LOGGERS.get(component)
    if logger is None:
        logger = _LOGGERS[component] = StructuredLogger(component)
    return logger
