"""Structured logging: human lines on stderr, JSONL events on ``REPRO_LOG``.

The orchestrator's progress lines (and any other component's) flow through
one logger so verbosity is controlled in one place:

* ``REPRO_LOG_LEVEL`` (``debug`` | ``info`` | ``warning`` | ``error`` |
  ``quiet``; default ``info``) gates the human-readable stderr lines —
  quiet runs and tests stop interleaving progress prints with results;
* ``REPRO_LOG`` names a JSONL destination (``stderr``, ``-``, or a file
  path) that receives *every* event as one structured line regardless of
  level, stamped with a per-process provenance header (repro version +
  store schema version) so exported event logs can be diffed across
  releases;
* ``REPRO_LOG_MAX_BYTES`` bounds file growth: when the JSONL file would
  exceed the cap, it is rotated once to ``<path>.1`` (replacing any
  previous rotation) and a fresh file — meta header first — takes over.

Events are flat JSON objects: ``{"type": "log" | "span" | "meta", "ts":
wall-clock seconds, ...}``.  Span events come from
:mod:`repro.obs.spans`; both share the file handle (append mode, one
line per event, lock-serialised within the process — concurrent worker
processes append whole lines, which POSIX keeps intact for the short
lines written here).

Every event is also fanned out to registered in-process *sinks*
(:func:`add_event_sink`) regardless of ``REPRO_LOG`` — the live
observability endpoint's SSE stream subscribes this way.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Callable, Dict, IO, List, Optional

#: Human-facing level thresholds (a superset of logging's, plus "quiet").
LEVELS: Dict[str, int] = {
    "debug": 10,
    "info": 20,
    "warning": 30,
    "warn": 30,
    "error": 40,
    "quiet": 100,
    "off": 100,
}

_lock = threading.Lock()
_level: Optional[int] = None
_jsonl: Optional[IO[str]] = None
_jsonl_path: Optional[str] = None
_header_written = False
_jsonl_bytes = 0
_max_bytes: Optional[int] = None
_max_bytes_read = False
#: In-process event subscribers (SSE bus, tests); called outside the
#: file lock's critical section would race reset(), so they run inside.
_sinks: List[Callable[[Dict[str, object]], None]] = []

#: ``REPRO_LOG`` values that mean "write to stderr, not a file".
_STDERR_DESTS = frozenset({"stderr", "-"})


def provenance() -> Dict[str, object]:
    """Version stamp shared by JSONL logs, store exports and bench files."""
    from repro.campaigns.store import SCHEMA_VERSION
    from repro.version import __version__

    return {
        "repro_version": __version__,
        "store_schema_version": SCHEMA_VERSION,
    }


def log_level() -> int:
    """The active stderr threshold (reads ``REPRO_LOG_LEVEL`` once)."""
    global _level
    if _level is None:
        raw = (os.environ.get("REPRO_LOG_LEVEL") or "info").strip().lower()
        try:
            _level = LEVELS.get(raw, None) or int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_LOG_LEVEL must be one of {sorted(set(LEVELS))} or an "
                f"integer, got {raw!r}"
            ) from None
    return _level


def _log_max_bytes() -> Optional[int]:
    """The ``REPRO_LOG_MAX_BYTES`` rotation cap (read once; None = off)."""
    global _max_bytes, _max_bytes_read
    if not _max_bytes_read:
        _max_bytes_read = True
        raw = os.environ.get("REPRO_LOG_MAX_BYTES")
        if raw:
            try:
                cap = int(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_LOG_MAX_BYTES must be an integer, got {raw!r}"
                ) from None
            _max_bytes = cap if cap > 0 else None
    return _max_bytes


def _meta_header() -> str:
    header = {"type": "meta", "ts": time.time(), "pid": os.getpid()}
    header.update(provenance())
    return json.dumps(header, sort_keys=True) + "\n"


def _jsonl_handle() -> Optional[IO[str]]:
    """The ``REPRO_LOG`` append handle (opened lazily, header first)."""
    global _jsonl, _jsonl_path, _header_written, _jsonl_bytes
    path = os.environ.get("REPRO_LOG")
    if not path:
        return None
    if _jsonl is None or _jsonl_path != path:
        if _jsonl is not None and _jsonl_path not in _STDERR_DESTS:
            _jsonl.close()
        if path in _STDERR_DESTS:
            _jsonl = sys.stderr
            _jsonl_bytes = 0
        else:
            _jsonl = open(path, "a", encoding="utf-8")
            try:
                _jsonl_bytes = os.path.getsize(path)
            except OSError:
                _jsonl_bytes = 0
        _jsonl_path = path
        _header_written = False
    if not _header_written:
        _header_written = True
        header = _meta_header()
        _jsonl.write(header)
        _jsonl.flush()
        _jsonl_bytes += len(header.encode("utf-8"))
    return _jsonl


def _rotate_jsonl() -> None:
    """One-deep rotation: current file → ``<path>.1``, fresh file + header."""
    global _jsonl, _header_written, _jsonl_bytes
    assert _jsonl is not None and _jsonl_path is not None
    _jsonl.close()
    os.replace(_jsonl_path, _jsonl_path + ".1")
    _jsonl = open(_jsonl_path, "a", encoding="utf-8")
    _jsonl_bytes = 0
    header = _meta_header()
    _jsonl.write(header)
    _jsonl.flush()
    _jsonl_bytes = len(header.encode("utf-8"))
    _header_written = True


def add_event_sink(sink: Callable[[Dict[str, object]], None]) -> None:
    """Register an in-process subscriber for every structured event."""
    with _lock:
        if sink not in _sinks:
            _sinks.append(sink)


def remove_event_sink(sink: Callable[[Dict[str, object]], None]) -> None:
    """Unregister a sink previously added with :func:`add_event_sink`."""
    with _lock:
        if sink in _sinks:
            _sinks.remove(sink)


def events_active() -> bool:
    """Whether :func:`emit_event` currently has anywhere to deliver.

    A cheap pre-check for hot callers (the span exit path): when
    ``REPRO_LOG`` is unset and no sink is registered, the event payload
    need not even be built.
    """
    return bool(_sinks) or bool(os.environ.get("REPRO_LOG"))


def emit_event(payload: Dict[str, object]) -> None:
    """Fan one structured event out to ``REPRO_LOG`` and every sink."""
    with _lock:
        fh = _jsonl_handle()
        if fh is None and not _sinks:
            return
        record: Dict[str, object] = {"ts": time.time()}
        record.update(payload)
        if fh is not None:
            global _jsonl_bytes
            line = json.dumps(record, sort_keys=True, default=repr) + "\n"
            cap = _log_max_bytes()
            if (
                cap is not None
                and _jsonl_path not in _STDERR_DESTS
                and _jsonl_bytes + len(line.encode("utf-8")) > cap
                and _jsonl_bytes > 0
            ):
                _rotate_jsonl()
                fh = _jsonl
            fh.write(line)
            fh.flush()
            _jsonl_bytes += len(line.encode("utf-8"))
        for sink in list(_sinks):
            try:
                sink(record)
            except Exception:  # a broken subscriber must not break logging
                pass


def reset() -> None:
    """Re-read the environment and drop cached handles (test hook)."""
    global _level, _jsonl, _jsonl_path, _header_written
    global _jsonl_bytes, _max_bytes, _max_bytes_read
    with _lock:
        _level = None
        if _jsonl is not None and _jsonl_path not in _STDERR_DESTS:
            _jsonl.close()
        _jsonl = None
        _jsonl_path = None
        _header_written = False
        _jsonl_bytes = 0
        _max_bytes = None
        _max_bytes_read = False


class StructuredLogger:
    """One component's logging facade.

    ``component`` names the subsystem (``"campaign"``, ``"protect"``) in
    every structured event; the human stderr line is the bare message, so
    existing progress formats — and the greps in CI — are unchanged.
    """

    def __init__(self, component: str) -> None:
        self.component = component

    def log(self, level: str, event: str, message: str = "",
            **fields: object) -> None:
        severity = LEVELS.get(level, 20)
        if severity >= log_level():
            print(message or event, file=sys.stderr)
        payload: Dict[str, object] = {
            "type": "log",
            "level": level,
            "component": self.component,
            "event": event,
        }
        if message:
            payload["message"] = message
        payload.update(fields)
        emit_event(payload)

    def debug(self, event: str, message: str = "", **fields: object) -> None:
        self.log("debug", event, message, **fields)

    def info(self, event: str, message: str = "", **fields: object) -> None:
        self.log("info", event, message, **fields)

    def warning(self, event: str, message: str = "", **fields: object) -> None:
        self.log("warning", event, message, **fields)

    def error(self, event: str, message: str = "", **fields: object) -> None:
        self.log("error", event, message, **fields)


_LOGGERS: Dict[str, StructuredLogger] = {}


def get_logger(component: str) -> StructuredLogger:
    """The (cached) logger of one component."""
    logger = _LOGGERS.get(component)
    if logger is None:
        logger = _LOGGERS[component] = StructuredLogger(component)
    return logger
