"""Bench-regression watchdog: ``python -m repro bench check``.

The repository commits one ``BENCH_*.json`` baseline per performance
claim (MIR speedup, replay batching, speculative injection, telemetry
overhead).  This module turns those snapshots into *gates with history*:

* ``check`` re-runs a benchmark's ``measure_all()`` (the same entry point
  the standalone scripts and pytest-benchmark use), compares the fresh
  numbers against the committed baseline, and fails past a configurable
  tolerance;
* every check appends a provenance-stamped entry to the baseline file's
  ``history`` list, so the JSON files become trajectories rather than
  snapshots — a slow drift across ten commits is visible even when every
  individual step stayed inside tolerance.

Only **hardware-independent ratio metrics** participate (speedups and
overheads — both halves of each ratio were measured on the same machine
in the same run); absolute seconds and throughputs are recorded in the
history but never gated, so a slower CI runner cannot fail the check.
Regression is judged per metric *and* on the geometric mean of the
normalized fresh/baseline ratios (normalized so > 1 is an improvement
for both higher-is-better speedups and lower-is-better overheads).
"""

from __future__ import annotations

import importlib.util
import json
import math
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.log import provenance

#: Default relative tolerance before a ratio metric counts as regressed.
DEFAULT_TOLERANCE = 0.2


@dataclass(frozen=True)
class MetricSpec:
    """One gated metric: a dotted path into the bench payload.

    ``*`` path segments fan out over the dict keys at that level (sorted,
    so reports are deterministic).  ``direction`` is ``"higher"`` (speedup
    — more is better) or ``"lower"`` (overhead — less is better).
    """

    path: str
    direction: str  # "higher" | "lower"


@dataclass(frozen=True)
class BenchSpec:
    """One watched benchmark: its baseline file, script and gated metrics."""

    name: str
    baseline: str
    script: str
    metrics: Tuple[MetricSpec, ...]


#: The watched benchmarks.  ``bench_campaign``'s headline numbers are
#: absolute throughputs (hardware-dependent), so it is deliberately not
#: gated here — its baseline stays a snapshot.
BENCHES: Dict[str, BenchSpec] = {
    spec.name: spec
    for spec in (
        BenchSpec(
            name="mir",
            baseline="BENCH_mir.json",
            script="bench_mir.py",
            metrics=(
                MetricSpec("workloads.*.speedup", "higher"),
                MetricSpec("geomean_speedup", "higher"),
            ),
        ),
        BenchSpec(
            name="obs",
            baseline="BENCH_obs.json",
            script="bench_obs.py",
            metrics=(
                MetricSpec("workloads.*.overhead", "lower"),
                MetricSpec("geomean_overhead", "lower"),
            ),
        ),
        BenchSpec(
            name="advf_inject",
            baseline="BENCH_advf_inject.json",
            script="bench_advf_inject.py",
            metrics=(
                MetricSpec("timings.*.speedup", "higher"),
                MetricSpec("geomean_speedup", "higher"),
            ),
        ),
        BenchSpec(
            name="replay_batch",
            baseline="BENCH_replay_batch.json",
            script="bench_replay_batch.py",
            metrics=(
                MetricSpec("matmul.speedup", "higher"),
                MetricSpec("cg.speedup", "higher"),
            ),
        ),
    )
}


@dataclass
class MetricFinding:
    """One compared metric of one benchmark."""

    metric: str
    direction: str
    baseline: float
    fresh: float
    #: Normalized fresh/baseline ratio — > 1 means the fresh run improved.
    ratio: float
    regressed: bool


@dataclass
class BenchReport:
    """Everything one benchmark's check produced."""

    name: str
    tolerance: float
    findings: List[MetricFinding] = field(default_factory=list)
    geomean_ratio: float = 1.0
    geomean_regressed: bool = False

    @property
    def regressed(self) -> bool:
        return self.geomean_regressed or any(f.regressed for f in self.findings)


# --------------------------------------------------------------------- #
# metric extraction + comparison (pure — unit-testable without timing)
# --------------------------------------------------------------------- #
def resolve_metrics(
    payload: Dict[str, object], metrics: Sequence[MetricSpec]
) -> Dict[str, Tuple[float, str]]:
    """Expand metric paths against a payload: ``path -> (value, direction)``.

    Wildcard segments fan out over sorted dict keys; paths that resolve to
    nothing (a workload absent from one side) simply yield no entry —
    comparison happens on the intersection.
    """
    out: Dict[str, Tuple[float, str]] = {}
    for spec in metrics:
        for resolved, value in _walk(payload, spec.path.split("."), ""):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[resolved] = (float(value), spec.direction)
    return out


def _walk(node: object, segments: List[str], prefix: str):
    if not segments:
        yield prefix, node
        return
    if not isinstance(node, dict):
        return
    head, rest = segments[0], segments[1:]
    keys = sorted(node) if head == "*" else ([head] if head in node else [])
    for key in keys:
        path = f"{prefix}.{key}" if prefix else key
        yield from _walk(node[key], rest, path)


def compare_runs(
    name: str,
    baseline: Dict[str, object],
    fresh: Dict[str, object],
    metrics: Sequence[MetricSpec],
    tolerance: float = DEFAULT_TOLERANCE,
) -> BenchReport:
    """Gate a fresh bench payload against its committed baseline.

    A higher-is-better metric regresses when ``fresh < baseline * (1 -
    tolerance)``; a lower-is-better one when ``fresh > baseline * (1 +
    tolerance)`` — both reduce to ``normalized ratio < 1 - tolerance`` up
    to rounding, and the geometric mean of the normalized ratios is held
    to the same bound so many small coordinated slips still trip the gate.
    """
    report = BenchReport(name=name, tolerance=tolerance)
    base_values = resolve_metrics(baseline, metrics)
    fresh_values = resolve_metrics(fresh, metrics)
    ratios: List[float] = []
    for path in sorted(set(base_values) & set(fresh_values)):
        base, direction = base_values[path]
        new = fresh_values[path][0]
        if base <= 0 or new <= 0:
            continue
        ratio = new / base if direction == "higher" else base / new
        ratios.append(ratio)
        report.findings.append(
            MetricFinding(
                metric=path,
                direction=direction,
                baseline=base,
                fresh=new,
                ratio=ratio,
                regressed=ratio < 1.0 - tolerance,
            )
        )
    if ratios:
        report.geomean_ratio = math.exp(
            sum(math.log(r) for r in ratios) / len(ratios)
        )
        report.geomean_regressed = report.geomean_ratio < 1.0 - tolerance
    return report


# --------------------------------------------------------------------- #
# fresh runs + baseline history
# --------------------------------------------------------------------- #
def run_bench(spec: BenchSpec, bench_dir: Path) -> Dict[str, object]:
    """Execute one benchmark script's ``measure_all()`` and return its payload.

    The script is loaded by file path (``benchmarks/`` is not a package),
    exactly as ``python benchmarks/bench_X.py`` would run it.
    """
    path = bench_dir / spec.script
    module_spec = importlib.util.spec_from_file_location(
        f"repro_bench_{spec.name}", path
    )
    if module_spec is None or module_spec.loader is None:
        raise FileNotFoundError(f"cannot load benchmark script {path}")
    module = importlib.util.module_from_spec(module_spec)
    module_spec.loader.exec_module(module)
    return module.measure_all()


def history_entry(report: BenchReport, fresh: Dict[str, object]) -> Dict[str, object]:
    """The provenance-stamped trajectory point one check appends."""
    entry: Dict[str, object] = {
        "recorded_at": time.time(),
        "tolerance": report.tolerance,
        "geomean_ratio": report.geomean_ratio,
        "regressed": report.regressed,
        "metrics": {f.metric: f.fresh for f in report.findings},
    }
    entry.update(provenance())
    return entry


def append_history(
    baseline_path: Path,
    entry: Dict[str, object],
    fresh: Optional[Dict[str, object]] = None,
) -> None:
    """Append a history entry to a baseline file (rewriting it in place).

    When ``fresh`` is given (``--update``), the baseline measurements are
    replaced by the fresh run — the history (including this entry) is the
    only part that always survives, so an updated baseline still carries
    its past.
    """
    payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    history = payload.get("history")
    if not isinstance(history, list):
        history = []
    history.append(entry)
    if fresh is not None:
        replacement = dict(fresh)
        replacement["provenance"] = provenance()
        payload = replacement
    payload["history"] = history
    baseline_path.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def check_benches(
    names: Optional[Sequence[str]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    baseline_dir: Optional[Path] = None,
    bench_dir: Optional[Path] = None,
    update: bool = False,
    record: bool = True,
) -> List[BenchReport]:
    """Run the watchdog over the named benchmarks (default: all watched).

    Returns one :class:`BenchReport` per benchmark; callers exit nonzero
    when any ``report.regressed``.  ``record=False`` skips the history
    append (used by tests that must not touch committed files).
    """
    baseline_dir = baseline_dir or _repo_root()
    bench_dir = bench_dir or (_repo_root() / "benchmarks")
    reports: List[BenchReport] = []
    for name in names or sorted(BENCHES):
        spec = BENCHES.get(name)
        if spec is None:
            raise KeyError(
                f"unknown benchmark {name!r}; watched: {sorted(BENCHES)}"
            )
        baseline_path = baseline_dir / spec.baseline
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        fresh = run_bench(spec, bench_dir)
        report = compare_runs(name, baseline, fresh, spec.metrics, tolerance)
        if record:
            append_history(
                baseline_path,
                history_entry(report, fresh),
                fresh if update else None,
            )
        reports.append(report)
    return reports


def _repo_root() -> Path:
    """The source checkout root (where ``BENCH_*.json`` live)."""
    here = Path(__file__).resolve()
    for candidate in here.parents:
        if (candidate / "benchmarks").is_dir() and any(
            candidate.glob("BENCH_*.json")
        ):
            return candidate
    return Path.cwd()


def format_reports(reports: Sequence[BenchReport]) -> str:
    """The human table ``repro bench check`` prints."""
    from repro.reporting.tables import format_table

    rows = []
    for report in reports:
        for finding in report.findings:
            rows.append(
                [
                    report.name,
                    finding.metric,
                    f"{finding.baseline:.4g}",
                    f"{finding.fresh:.4g}",
                    f"{finding.ratio:.3f}",
                    "REGRESSED" if finding.regressed else "ok",
                ]
            )
        rows.append(
            [
                report.name,
                "(geomean)",
                "",
                "",
                f"{report.geomean_ratio:.3f}",
                "REGRESSED" if report.geomean_regressed else "ok",
            ]
        )
    return format_table(
        ["bench", "metric", "baseline", "fresh", "ratio", "verdict"], rows
    )


def main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover
    """Standalone entry point (the CLI wires ``repro bench check`` here)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument("--bench", action="append", default=None)
    parser.add_argument("--update", action="store_true")
    args = parser.parse_args(argv)
    reports = check_benches(
        args.bench, tolerance=args.tolerance, update=args.update
    )
    print(format_reports(reports))
    return 1 if any(r.regressed for r in reports) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
