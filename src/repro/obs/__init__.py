"""Unified telemetry: metrics registry, span tracing, structured logging.

One instrumentation protocol for every layer of the stack — the engine's
dispatch loop, the batched replay scheduler, the MIR and trace caches,
campaign workers, the orchestrator, the store and the CLI — replacing the
ad-hoc per-subsystem counters and bare progress prints that preceded it.

Quick tour::

    from repro.obs import registry, span, get_logger

    registry().inc("engine.segment_dispatches", 3, backend="block")
    with span("replay.batch", shard=7):
        ...                                  # timed, nestable, exported
    get_logger("campaign").info("shard.done", "shard 7 finished", shard=7)

Environment knobs:

``REPRO_METRICS``
    ``0`` / ``off`` replaces the registry with a no-op implementation;
    the engine's instrumentation then costs nothing measurable.
``REPRO_LOG``
    Path of a JSONL event log receiving every structured log/span event,
    stamped with a provenance header (repro + store schema versions).
``REPRO_LOG_LEVEL``
    Human stderr verbosity: ``debug`` | ``info`` (default) | ``warning``
    | ``error`` | ``quiet``.

Worker processes record into their own process-local registry and ship
``registry().snapshot_delta(cursor)`` payloads to the parent, which folds
them with ``registry().merge(delta)`` — the fold is associative and
deterministic, so parallel campaigns aggregate exactly.
"""

from repro.obs.log import (
    LEVELS,
    StructuredLogger,
    emit_event,
    get_logger,
    log_level,
    provenance,
)
from repro.obs.metrics import (
    TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    configure,
    diff_snapshots,
    merge_snapshots,
    metrics_enabled,
    registry,
)
from repro.obs.prom import render_promfile, write_promfile
from repro.obs.spans import Span, current_span, span

__all__ = [
    "LEVELS",
    "StructuredLogger",
    "emit_event",
    "get_logger",
    "log_level",
    "provenance",
    "TIME_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "configure",
    "diff_snapshots",
    "merge_snapshots",
    "metrics_enabled",
    "registry",
    "render_promfile",
    "write_promfile",
    "Span",
    "current_span",
    "span",
]
