"""Unified telemetry: metrics registry, span tracing, structured logging.

One instrumentation protocol for every layer of the stack — the engine's
dispatch loop, the batched replay scheduler, the MIR and trace caches,
campaign workers, the orchestrator, the store and the CLI — replacing the
ad-hoc per-subsystem counters and bare progress prints that preceded it.

Quick tour::

    from repro.obs import registry, span, get_logger

    registry().inc("engine.segment_dispatches", 3, backend="block")
    with span("replay.batch", shard=7):
        ...                                  # timed, nestable, exported
    get_logger("campaign").info("shard.done", "shard 7 finished", shard=7)

On top of the in-process primitives sit three durable/live surfaces:

* the **flight recorder** (:mod:`repro.obs.spans` recording +
  ``run_spans`` store rows): finished spans of a campaign run — with
  campaign/run/shard/pid correlation labels — survive process exit and
  render as a waterfall via ``python -m repro timeline``;
* the **live endpoint** (:mod:`repro.obs.serve`): ``python -m repro obs
  serve`` exposes ``/metrics`` (Prometheus text), ``/healthz``,
  ``/campaigns`` and an SSE ``/events`` stream over stdlib HTTP;
* the **bench watchdog** (:mod:`repro.obs.bench`): ``python -m repro
  bench check`` gates fresh benchmark runs against the committed
  ``BENCH_*.json`` baselines and appends history entries to them.

Environment knobs:

``REPRO_METRICS``
    ``0`` / ``off`` replaces the registry with a no-op implementation;
    the engine's instrumentation then costs nothing measurable.
``REPRO_LOG``
    JSONL event destination (``stderr``, ``-``, or a file path) receiving
    every structured log/span event, stamped with a provenance header
    (repro + store schema versions).
``REPRO_LOG_LEVEL``
    Human stderr verbosity: ``debug`` | ``info`` (default) | ``warning``
    | ``error`` | ``quiet``.
``REPRO_LOG_MAX_BYTES``
    Size cap on the ``REPRO_LOG`` file: exceeding it rotates the file
    once to ``<path>.1`` and starts fresh (meta header re-written).
``REPRO_OBS_PORT``
    Default port of the live endpoint; setting it makes ``campaign
    run``/``resume`` serve in-process even without ``--serve``.

Worker processes record into their own process-local registry and ship
``registry().snapshot_delta(cursor)`` payloads to the parent, which folds
them with ``registry().merge(delta)`` — the fold is associative and
deterministic, so parallel campaigns aggregate exactly.  Their finished
spans travel the same road: buffered per process, drained per chunk, and
persisted by the orchestrator.
"""

from repro.obs.log import (
    LEVELS,
    StructuredLogger,
    add_event_sink,
    emit_event,
    get_logger,
    log_level,
    provenance,
    remove_event_sink,
)
from repro.obs.metrics import (
    TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    configure,
    diff_snapshots,
    merge_snapshots,
    metrics_enabled,
    registry,
)
from repro.obs.prom import render_promfile, write_promfile
from repro.obs.spans import (
    Span,
    clear_span_context,
    current_span,
    disable_recording,
    drain_span_records,
    enable_recording,
    get_span_context,
    recording_enabled,
    set_span_context,
    span,
    span_context,
)

__all__ = [
    "LEVELS",
    "StructuredLogger",
    "add_event_sink",
    "emit_event",
    "get_logger",
    "log_level",
    "provenance",
    "remove_event_sink",
    "TIME_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "configure",
    "diff_snapshots",
    "merge_snapshots",
    "metrics_enabled",
    "registry",
    "render_promfile",
    "write_promfile",
    "Span",
    "clear_span_context",
    "current_span",
    "disable_recording",
    "drain_span_records",
    "enable_recording",
    "get_span_context",
    "recording_enabled",
    "set_span_context",
    "span",
    "span_context",
]
